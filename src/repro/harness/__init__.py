"""Experiment harness: runner, provider factory, reporting, experiments."""

from repro.harness.experiments import (
    BoundQualityResult,
    PrimTableRow,
    bounds_quality_experiment,
    dft_experiment,
    landmark_count_sweep,
    oracle_cost_sweep,
    parameter_sweep,
    prim_call_table,
    size_sweep,
    tri_gap_vs_edges,
)
from repro.harness.providers import LANDMARK_PROVIDERS, PROVIDER_NAMES, attach_provider, make_provider
from repro.harness.reporting import (
    format_value,
    print_series,
    print_table,
    render_series,
    render_table,
)
from repro.harness.runner import ALGORITHMS, ExperimentRecord, percentage_save, run_experiment
from repro.harness.stats import (
    Summary,
    compare_schemes,
    merge_executor_stats,
    merge_resolver_stats,
    repeat_experiment,
    summarize,
    summarize_executor_stats,
    summarize_resolver_stats,
)
from repro.harness.tracing import CallEvent, TracingOracle, load_trace
from repro.obs.sinks import CollectingSink, JsonlSink, MetricsSink
from repro.harness.workloads import (
    batched_queries,
    focused_queries,
    uniform_queries,
    zipf_queries,
)

__all__ = [
    "ALGORITHMS",
    "BoundQualityResult",
    "ExperimentRecord",
    "LANDMARK_PROVIDERS",
    "PROVIDER_NAMES",
    "PrimTableRow",
    "attach_provider",
    "bounds_quality_experiment",
    "dft_experiment",
    "format_value",
    "landmark_count_sweep",
    "make_provider",
    "oracle_cost_sweep",
    "parameter_sweep",
    "percentage_save",
    "prim_call_table",
    "print_series",
    "print_table",
    "render_series",
    "render_table",
    "run_experiment",
    "CallEvent",
    "CollectingSink",
    "JsonlSink",
    "MetricsSink",
    "Summary",
    "TracingOracle",
    "load_trace",
    "batched_queries",
    "compare_schemes",
    "focused_queries",
    "merge_executor_stats",
    "merge_resolver_stats",
    "repeat_experiment",
    "size_sweep",
    "summarize",
    "summarize_executor_stats",
    "summarize_resolver_stats",
    "uniform_queries",
    "zipf_queries",
    "tri_gap_vs_edges",
]
