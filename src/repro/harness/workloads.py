"""Query-workload generators for the query-serving comparisons.

The framework's advantage over build-then-query indexes depends on the
*workload*: how many queries arrive, how skewed they are, and whether they
revisit the same region (where the shared partial graph compounds).  These
generators produce the standard shapes.
"""

from __future__ import annotations

from typing import List

import numpy as np


def uniform_queries(n: int, count: int, seed: int = 0) -> List[int]:
    """``count`` query object ids drawn uniformly (with repetition)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    rng = np.random.default_rng(seed)
    return [int(q) for q in rng.integers(n, size=count)]


def zipf_queries(n: int, count: int, exponent: float = 1.2, seed: int = 0) -> List[int]:
    """Zipf-skewed queries: a few hot objects dominate the workload.

    Object ``rank r`` is drawn with probability proportional to
    ``(r + 1)^-exponent`` over a random permutation of the ids, mimicking
    popularity-skewed production query logs.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    rng = np.random.default_rng(seed)
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-exponent)
    weights /= weights.sum()
    permutation = rng.permutation(n)
    ranks = rng.choice(n, size=count, p=weights)
    return [int(permutation[r]) for r in ranks]


def focused_queries(
    n: int,
    count: int,
    focus_fraction: float = 0.1,
    seed: int = 0,
) -> List[int]:
    """All queries land inside one contiguous id block (a hot region).

    With clustered datasets whose ids correlate with location this models a
    geographically focused workload; the shared graph saturates the region
    quickly.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 0 < focus_fraction <= 1:
        raise ValueError("focus_fraction must be in (0, 1]")
    rng = np.random.default_rng(seed)
    width = max(1, int(round(focus_fraction * n)))
    start = int(rng.integers(max(1, n - width + 1)))
    return [start + int(q) for q in rng.integers(width, size=count)]


def batched_queries(
    n: int,
    batches: int,
    batch_size: int,
    seed: int = 0,
) -> List[List[int]]:
    """A list of query batches (uniform), for amortisation experiments."""
    if batches < 0 or batch_size < 0:
        raise ValueError("batches and batch_size must be non-negative")
    rng = np.random.default_rng(seed)
    return [
        [int(q) for q in rng.integers(n, size=batch_size)] for _ in range(batches)
    ]
