"""Multi-seed aggregation for experiment rigor.

The paper averages key experiments over 10 runs (§5.3).  These helpers run
an experiment factory across seeds and summarise the per-seed measurements
with mean, standard deviation, and a normal-approximation confidence
interval.  Runs that went through the batched execution pipeline also carry
:class:`~repro.exec.ExecutorStats`; :func:`merge_executor_stats` and
:func:`summarize_executor_stats` aggregate those across seeds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Callable, Dict, Sequence

from repro.core.resolver import ResolverStats
from repro.exec import ExecutorStats


@dataclass(frozen=True)
class Summary:
    """Mean/σ/CI summary of one metric across repeated runs."""

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.count})"


#: z-value for a 95 % normal confidence interval.
_Z95 = 1.959963984540054


def summarize(values: Sequence[float], z: float = _Z95) -> Summary:
    """Summarise a sample of measurements.

    Uses the sample standard deviation (ddof=1) and a z-interval on the
    mean; with a single value the interval collapses to the point.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("cannot summarise an empty sample")
    count = len(values)
    mean = sum(values) / count
    if count == 1:
        return Summary(mean=mean, std=0.0, count=1, ci_low=mean, ci_high=mean)
    variance = sum((v - mean) ** 2 for v in values) / (count - 1)
    std = math.sqrt(variance)
    half = z * std / math.sqrt(count)
    return Summary(mean=mean, std=std, count=count, ci_low=mean - half, ci_high=mean + half)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches NumPy's default (``linear``) interpolation so the service
    engine's p50/p95 job-latency figures agree with offline analysis;
    kept dependency-free because it runs inside the engine's stats path.
    """
    if not 0 <= q <= 100:
        raise ValueError("percentile rank must be within [0, 100]")
    data = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot take a percentile of an empty sample")
    if len(data) == 1:
        return data[0]
    rank = (len(data) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return data[low]
    return data[low] + (data[high] - data[low]) * (rank - low)


def repeat_experiment(
    factory: Callable[[int], float],
    seeds: Sequence[int],
) -> Summary:
    """Run ``factory(seed)`` per seed and summarise the returned metric."""
    values = [factory(seed) for seed in seeds]
    return summarize(values)


def compare_schemes(
    factories: dict,
    seeds: Sequence[int],
) -> dict:
    """Summarise several labelled experiment factories over the same seeds."""
    return {label: repeat_experiment(factory, seeds) for label, factory in factories.items()}


def merge_executor_stats(stats_list: Sequence[ExecutorStats]) -> ExecutorStats:
    """Fold several runs' executor counters into one total.

    Sums the additive counters and keeps the maxima of the high-water marks
    (``max_in_flight``, ``largest_batch``); None entries (runs without a
    pipeline) are skipped.
    """
    merged = ExecutorStats()
    for stats in stats_list:
        if stats is not None:
            merged = merged.merge(stats)
    return merged


def summarize_executor_stats(
    stats_list: Sequence[ExecutorStats],
) -> Dict[str, Summary]:
    """Per-counter :class:`Summary` across repeated runs' executor stats."""
    present = [s for s in stats_list if s is not None]
    if not present:
        raise ValueError("cannot summarise executor stats without any runs")
    return {
        f.name: summarize([getattr(s, f.name) for s in present])
        for f in fields(ExecutorStats)
    }


def merge_resolver_stats(stats_list: Sequence[ResolverStats]) -> ResolverStats:
    """Fold several runs' resolver counters into one total.

    All :class:`ResolverStats` fields are additive (counts and seconds);
    None entries are skipped.
    """
    merged = ResolverStats()
    for stats in stats_list:
        if stats is not None:
            merged = merged.merge(stats)
    return merged


def summarize_resolver_stats(
    stats_list: Sequence[ResolverStats],
) -> Dict[str, Summary]:
    """Per-counter :class:`Summary` across repeated runs' resolver stats."""
    present = [s for s in stats_list if s is not None]
    if not present:
        raise ValueError("cannot summarise resolver stats without any runs")
    return {
        f.name: summarize([getattr(s, f.name) for s in present])
        for f in fields(ResolverStats)
    }
