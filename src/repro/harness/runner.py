"""Experiment runner: algorithm × provider × dataset with full accounting.

Reproduces the paper's measurement discipline:

* **oracle calls** are split into *bootstrap* (landmark pre-pay) and
  *algorithm* phases — Tables 2 and 3 report them separately;
* **CPU overhead** is wall time minus simulated oracle latency (§5.1.5);
* **completion time** under an expensive oracle is reconstructed on the
  virtual clock as ``cpu_seconds + calls × cost_per_call``, which is exactly
  the arithmetic behind the paper's Figures 7d/8a/8b and avoids hours of
  sleeping.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Union

from repro.algorithms import clarans, knn_graph, knn_graph_brute, kruskal_mst, pam, prim_mst
from repro.algorithms.dbscan import dbscan
from repro.algorithms.kcenter import k_center
from repro.algorithms.linkage import single_linkage
from repro.algorithms.prim import prim_mst_comparisons
from repro.algorithms.tsp import nearest_neighbor_tour
from repro.bounds.landmarks import bootstrap_with_landmarks, default_num_landmarks
from repro.core.resolver import ResolverStats, SmartResolver
from repro.core.tiering import TieredOracle, WeakOracle
from repro.exec import BatchOracle, ExecutorStats, make_executor, open_cache
from repro.exec.executor import DEFAULT_WORKERS
from repro.harness.providers import LANDMARK_PROVIDERS, attach_provider
from repro.obs import MetricsRegistry, MetricsSink, oracle_call_counter
from repro.spaces.base import MetricSpace

#: Host algorithms runnable by name.
ALGORITHMS: Dict[str, Callable[..., Any]] = {
    "prim": prim_mst,
    "prim-cmp": prim_mst_comparisons,
    "kruskal": kruskal_mst,
    "knng": knn_graph,
    "knng-brute": knn_graph_brute,
    "pam": pam,
    "clarans": clarans,
    "dbscan": dbscan,
    "kcenter": k_center,
    "linkage": single_linkage,
    "nn-tour": nearest_neighbor_tour,
}


@dataclass
class ExperimentRecord:
    """One (dataset, algorithm, provider) measurement."""

    algorithm: str
    provider: str
    n: int
    num_pairs: int
    bootstrap_calls: int
    algorithm_calls: int
    cpu_seconds: float
    oracle_cost_per_call: float
    result: Any = field(repr=False, default=None)
    params: Dict[str, Any] = field(default_factory=dict)
    #: Execution strategy: "inline" (no batching), "serial", or "threaded".
    executor: str = "inline"
    oracle_retries: int = 0
    oracle_timeouts: int = 0
    #: Virtual-clock latency actually accrued; under a concurrent executor
    #: this is lower than ``total_calls × cost_per_call`` because
    #: overlapping calls are priced by elapsed latency, not summed latency.
    simulated_oracle_seconds: float = 0.0
    #: Pairs answered by a persistent --oracle-cache backend (never charged).
    persistent_cache_hits: int = 0
    executor_stats: Optional[ExecutorStats] = field(repr=False, default=None)
    #: Resolver-side accounting (bound-engine counters included), collected
    #: after the algorithm phase via :meth:`SmartResolver.collect_stats`.
    resolver_stats: Optional[ResolverStats] = field(repr=False, default=None)
    #: Flat metrics-registry snapshot (``{sample_name: value}``), present
    #: when the run was observed through a registry or MetricsSink.
    metrics: Optional[Dict[str, float]] = field(repr=False, default=None)

    @property
    def bound_time_s(self) -> float:
        """Wall time spent inside bound-provider kernels."""
        return self.resolver_stats.bound_time_s if self.resolver_stats else 0.0

    @property
    def bound_cache_hits(self) -> int:
        """Bound queries answered from the epoch memo without recomputation."""
        return self.resolver_stats.bound_cache_hits if self.resolver_stats else 0

    @property
    def vectorized_batches(self) -> int:
        """Multi-pair bound dispatches that hit a provider's array kernel."""
        return self.resolver_stats.vectorized_batches if self.resolver_stats else 0

    @property
    def dijkstra_runs(self) -> int:
        """Shortest-path trees computed by SPLUB-style providers."""
        return self.resolver_stats.dijkstra_runs if self.resolver_stats else 0

    @property
    def weak_calls(self) -> int:
        """Charged weak-tier (banded estimate) calls; 0 in strong-only runs."""
        return self.resolver_stats.weak_calls if self.resolver_stats else 0

    @property
    def strong_calls(self) -> int:
        """Charged strong-tier (exact) calls classified by the resolver."""
        return self.resolver_stats.strong_calls if self.resolver_stats else 0

    @property
    def weak_band(self) -> int:
        """Bound queries the weak error band strictly tightened."""
        return self.resolver_stats.weak_band if self.resolver_stats else 0

    @property
    def total_calls(self) -> int:
        """Bootstrap plus algorithm oracle calls."""
        return self.bootstrap_calls + self.algorithm_calls

    @property
    def oracle_seconds(self) -> float:
        """Simulated oracle latency for the whole run (refund-aware)."""
        if self.simulated_oracle_seconds > 0:
            return self.simulated_oracle_seconds
        return self.total_calls * self.oracle_cost_per_call

    @property
    def completion_seconds(self) -> float:
        """End-to-end virtual completion time (CPU + oracle latency)."""
        return self.cpu_seconds + self.oracle_seconds

    def completion_at(self, cost_per_call: float) -> float:
        """Completion time re-priced at a different per-call oracle cost."""
        return self.cpu_seconds + self.total_calls * cost_per_call

    def save_vs(self, baseline: "ExperimentRecord") -> float:
        """Percentage of total oracle calls saved relative to ``baseline``."""
        return percentage_save(baseline.total_calls, self.total_calls)


def percentage_save(baseline_calls: float, our_calls: float) -> float:
    """``100 · (baseline − ours) / baseline`` (0 when the baseline is 0)."""
    if baseline_calls <= 0:
        return 0.0
    return 100.0 * (baseline_calls - our_calls) / baseline_calls


def run_experiment(
    space: MetricSpace,
    algorithm: str,
    provider: str = "none",
    num_landmarks: Optional[int] = None,
    landmark_bootstrap: bool = False,
    oracle_cost: float = 0.0,
    algorithm_kwargs: Optional[Dict[str, Any]] = None,
    executor: Optional[str] = None,
    workers: int = DEFAULT_WORKERS,
    oracle_cache: Optional[str] = None,
    registry: Optional[MetricsRegistry] = None,
    metrics_sink: Optional[MetricsSink] = None,
    weak_oracle: Union[bool, "WeakOracle", None] = None,
    stretch: float = 1.0,
) -> ExperimentRecord:
    """Run one measurement.

    Parameters
    ----------
    space:
        The metric space (wrapped in a fresh counting oracle).
    algorithm:
        One of :data:`ALGORITHMS`.
    provider:
        Bound provider name (see :data:`~repro.harness.providers.PROVIDER_NAMES`).
    num_landmarks:
        Landmark budget for "laesa"/"tlaesa" or a Tri/SPLUB bootstrap;
        defaults to the paper's ``log2(n)``.
    landmark_bootstrap:
        When True and the provider is not itself landmark-based, run the
        paper's LAESA bootstrap first so the provider starts with ``L``
        resolved rows (the "Tri Scheme with bootstrap" configuration).
    oracle_cost:
        Simulated seconds per oracle call (virtual clock).
    algorithm_kwargs:
        Extra keyword arguments for the host algorithm (``k``, ``l``, ...).
    executor:
        ``"serial"`` or ``"threaded"`` routes resolutions through the
        batched execution pipeline (:mod:`repro.exec`); None keeps the
        classic inline path.  Outputs are identical in every mode.
    workers:
        Thread-pool size for ``executor="threaded"``.
    oracle_cache:
        Path to a persistent distance cache (``":memory:"`` or a SQLite
        file); implies the pipeline even when ``executor`` is None.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry` to observe the
        run through.  The oracle, resolver, graph, and (when batching) the
        executor publish into it; its snapshot lands on
        ``ExperimentRecord.metrics``.  Outputs are identical either way.
    metrics_sink:
        Optional :class:`~repro.obs.sinks.MetricsSink`; ``export`` is called
        once with the final snapshot.  A private registry is created when a
        sink is given without a registry.
    weak_oracle:
        ``True`` asks the space for its native weak tier
        (:meth:`~repro.spaces.base.BaseSpace.weak_oracle`; error when it
        has none), a :class:`~repro.core.tiering.WeakOracle` instance is
        used as given.  The weak tier wraps the configured provider in a
        base ∩ weak intersection — results stay byte-identical; only the
        strong-call count drops.
    stretch:
        Approximation budget for the resolver (default ``1.0`` — exact).
        Above 1, distances whose bound interval certifies ``ub <= stretch ·
        lb`` are answered with the upper bound without charging the oracle;
        see :class:`~repro.core.resolver.SmartResolver`.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}")
    oracle = space.oracle(cost_per_call=oracle_cost)
    if registry is None and metrics_sink is not None:
        registry = MetricsRegistry()
    batcher = None
    if executor is not None or oracle_cache is not None:
        batcher = BatchOracle(
            oracle,
            executor=make_executor(executor or "serial", workers=workers),
            cache=open_cache(oracle_cache),
        )
        batcher.preload()
    tiered: Optional[TieredOracle] = None
    if weak_oracle is True:
        weak = getattr(space, "weak_oracle", lambda: None)()
        if weak is None:
            raise ValueError(
                f"{type(space).__name__} declares no native weak oracle; "
                "pass a WeakOracle instance instead"
            )
        tiered = TieredOracle(oracle, weak)
    elif weak_oracle:
        tiered = TieredOracle(oracle, weak_oracle)
    resolver = SmartResolver(oracle, batcher=batcher, registry=registry, stretch=stretch)
    if registry is not None:
        oracle_call_counter(registry, oracle)
        resolver.graph.instrument(registry)
        if batcher is not None:
            batcher.instrument(registry)
        if tiered is not None:
            tiered.instrument(registry)
    try:
        max_distance = space.diameter_bound()
        _, bootstrap_calls = attach_provider(
            resolver, provider, max_distance, num_landmarks, bootstrap=True
        )
        if tiered is not None:
            # Weak intervals intersect the configured provider's bounds —
            # the weak tier composes with any scheme, including "none".
            tiered.attach(resolver, max_distance)
        if landmark_bootstrap and provider.lower() not in LANDMARK_PROVIDERS:
            count = num_landmarks or default_num_landmarks(oracle.n)
            before = oracle.calls
            bootstrap_with_landmarks(resolver, count)
            bootstrap_calls += oracle.calls - before

        start_calls = oracle.calls
        start = time.perf_counter()
        result = ALGORITHMS[algorithm](resolver, **(algorithm_kwargs or {}))
        cpu_seconds = time.perf_counter() - start
    finally:
        if batcher is not None:
            batcher.close()
        if tiered is not None:
            tiered.close()

    resolver_stats = resolver.collect_stats()
    metrics_snapshot: Optional[Dict[str, float]] = None
    if registry is not None:
        metrics_snapshot = registry.snapshot()
        if metrics_sink is not None:
            metrics_sink.export(metrics_snapshot)

    n = oracle.n
    return ExperimentRecord(
        algorithm=algorithm,
        provider=provider,
        n=n,
        num_pairs=n * (n - 1) // 2,
        bootstrap_calls=bootstrap_calls,
        algorithm_calls=oracle.calls - start_calls,
        cpu_seconds=cpu_seconds,
        oracle_cost_per_call=oracle_cost,
        result=result,
        params=dict(algorithm_kwargs or {}),
        executor=batcher.executor.name if batcher is not None else "inline",
        oracle_retries=oracle.retries,
        oracle_timeouts=oracle.timeouts,
        simulated_oracle_seconds=oracle.simulated_seconds,
        persistent_cache_hits=batcher.cache_hits if batcher is not None else 0,
        executor_stats=batcher.executor.stats.copy() if batcher is not None else None,
        resolver_stats=resolver_stats,
        metrics=metrics_snapshot,
    )
