"""Core substrate: oracle accounting, partial graph, bounds, resolver."""

from repro.core.bounds import (
    BaseBoundProvider,
    BoundProvider,
    Bounds,
    IntersectionBounder,
    TrivialBounder,
    UNBOUNDED,
)
from repro.core.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    InvalidObjectError,
    JobBudgetExhaustedError,
    JobCancelledError,
    MetricViolationError,
    OracleResolutionError,
    ReproError,
    SnapshotMismatchError,
    SolverError,
    UnknownDistanceError,
)
from repro.core.csr_store import CSRStore
from repro.core.locking import ReadWriteLock
from repro.core.oracle import (
    DistanceOracle,
    Oracle,
    OracleStats,
    WallClockOracle,
    canonical_pair,
)
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.tiering import TieredOracle, WeakBand, WeakBoundProvider, WeakOracle
from repro.core.persistence import (
    ColumnSet,
    GraphArchive,
    load_archive,
    load_columns,
    load_graph,
    resume_resolver,
    save_columns,
    save_graph,
    seed_oracle_cache,
)
from repro.core.validation import ValidatingOracle
from repro.core.resolver import ResolverStats, SmartResolver

__all__ = [
    "BaseBoundProvider",
    "BoundProvider",
    "Bounds",
    "BudgetExceededError",
    "CSRStore",
    "ColumnSet",
    "ConfigurationError",
    "DistanceOracle",
    "GraphArchive",
    "IntersectionBounder",
    "InvalidObjectError",
    "JobBudgetExhaustedError",
    "JobCancelledError",
    "MetricViolationError",
    "Oracle",
    "OracleResolutionError",
    "OracleStats",
    "PartialDistanceGraph",
    "ReadWriteLock",
    "ReproError",
    "ResolverStats",
    "SmartResolver",
    "SnapshotMismatchError",
    "SolverError",
    "TieredOracle",
    "TrivialBounder",
    "UNBOUNDED",
    "UnknownDistanceError",
    "ValidatingOracle",
    "WeakBand",
    "WeakBoundProvider",
    "WeakOracle",
    "load_archive",
    "load_columns",
    "load_graph",
    "resume_resolver",
    "save_columns",
    "save_graph",
    "seed_oracle_cache",
    "WallClockOracle",
    "canonical_pair",
]
