"""Core substrate: oracle accounting, partial graph, bounds, resolver."""

from repro.core.bounds import (
    BaseBoundProvider,
    BoundProvider,
    Bounds,
    IntersectionBounder,
    TrivialBounder,
    UNBOUNDED,
)
from repro.core.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    InvalidObjectError,
    MetricViolationError,
    OracleResolutionError,
    ReproError,
    SolverError,
    UnknownDistanceError,
)
from repro.core.oracle import DistanceOracle, OracleStats, WallClockOracle, canonical_pair
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.persistence import load_graph, resume_resolver, save_graph, seed_oracle_cache
from repro.core.validation import ValidatingOracle
from repro.core.resolver import ResolverStats, SmartResolver

__all__ = [
    "BaseBoundProvider",
    "BoundProvider",
    "Bounds",
    "BudgetExceededError",
    "ConfigurationError",
    "DistanceOracle",
    "IntersectionBounder",
    "InvalidObjectError",
    "MetricViolationError",
    "OracleResolutionError",
    "OracleStats",
    "PartialDistanceGraph",
    "ReproError",
    "ResolverStats",
    "SmartResolver",
    "SolverError",
    "TrivialBounder",
    "UNBOUNDED",
    "UnknownDistanceError",
    "ValidatingOracle",
    "load_graph",
    "resume_resolver",
    "save_graph",
    "seed_oracle_cache",
    "WallClockOracle",
    "canonical_pair",
]
