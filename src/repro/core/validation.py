"""Runtime metric validation for untrusted oracles.

Third-party distance services occasionally return garbage — stale cache
entries, asymmetric driving times, plain errors.  Because every bound
scheme in this library *assumes* the triangle inequality, a single corrupt
answer can silently poison pruning decisions.  :class:`ValidatingOracle`
wraps any distance function and cross-checks each fresh answer against the
already-resolved distances, raising
:class:`~repro.core.exceptions.MetricViolationError` the moment an answer
is inconsistent with being a metric.

Checking a new distance ``d(i, j)`` against *all* resolved triangles
incident on the pair costs ``O(min(deg(i), deg(j)))`` — the same sorted
intersection the Tri Scheme uses — so validation is cheap relative to the
oracle call it guards.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from bisect import insort

from repro.core.exceptions import MetricViolationError
from repro.core.oracle import DistanceFn, DistanceOracle, Pair, canonical_pair


class ValidatingOracle(DistanceOracle):
    """Distance oracle that enforces metric consistency on the fly.

    Parameters
    ----------
    distance_fn, n, cost_per_call, budget:
        As for :class:`DistanceOracle`.
    tolerance:
        Absolute slack allowed before a triangle violation is reported
        (floating-point noise from honest oracles should pass).
    relaxation:
        The paper also covers *relaxed* triangle inequalities
        ``d(i,j) <= c · (d(i,k) + d(k,j))``; set ``relaxation=c`` (>= 1) to
        validate against the relaxed form instead.
    """

    def __init__(
        self,
        distance_fn: DistanceFn,
        n: int,
        cost_per_call: float = 0.0,
        budget: int | None = None,
        tolerance: float = 1e-9,
        relaxation: float = 1.0,
    ) -> None:
        if tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if relaxation < 1.0:
            raise ValueError("relaxation factor must be >= 1")
        super().__init__(distance_fn, n, cost_per_call=cost_per_call, budget=budget)
        self._tolerance = tolerance
        self._relaxation = relaxation
        self._resolved: Dict[Tuple[int, int], float] = {}
        self._adjacency: List[List[int]] = [[] for _ in range(n)]
        self.triangles_checked = 0

    def _on_charged(self, key: Pair, value: float) -> None:
        # Runs for every charged resolution — inline calls and batch commits
        # through record() alike — so concurrently evaluated distances get
        # the same scrutiny as synchronous ones.
        self._check_and_record(key[0], key[1], value)

    # -- consistency machinery -----------------------------------------------

    def _check_and_record(self, i: int, j: int, d_ij: float) -> None:
        adj_i = self._adjacency[i]
        adj_j = self._adjacency[j]
        if len(adj_i) > len(adj_j):
            adj_i, adj_j = adj_j, adj_i
        other = set(adj_j)
        c = self._relaxation
        tol = self._tolerance
        for w in adj_i:
            if w not in other:
                continue
            self.triangles_checked += 1
            d_iw = self._resolved[canonical_pair(i, w)]
            d_jw = self._resolved[canonical_pair(j, w)]
            if d_ij > c * (d_iw + d_jw) + tol:
                raise MetricViolationError(
                    f"d({i},{j})={d_ij} exceeds "
                    f"{c}·(d({i},{w})+d({j},{w}))={c * (d_iw + d_jw)}"
                )
            if d_iw > c * (d_ij + d_jw) + tol:
                raise MetricViolationError(
                    f"d({i},{w})={d_iw} exceeds "
                    f"{c}·(d({i},{j})+d({j},{w}))={c * (d_ij + d_jw)}"
                )
            if d_jw > c * (d_ij + d_iw) + tol:
                raise MetricViolationError(
                    f"d({j},{w})={d_jw} exceeds "
                    f"{c}·(d({i},{j})+d({i},{w}))={c * (d_ij + d_iw)}"
                )
        self._resolved[(i, j)] = d_ij
        insort(self._adjacency[i], j)
        insort(self._adjacency[j], i)

    def reset(self) -> None:
        super().reset()
        self._resolved.clear()
        self._adjacency = [[] for _ in range(self.n)]
        self.triangles_checked = 0
