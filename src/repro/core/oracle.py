"""Distance oracle abstraction with call accounting.

The paper's central cost model charges every *distance oracle* invocation —
a Google Maps request, an edit-distance computation on long sequences, an
image comparison — far more than any local CPU work.  :class:`DistanceOracle`
wraps an arbitrary symmetric distance function over integer object ids and

* counts calls (the paper's primary evaluation metric),
* caches results so a pair is never charged twice,
* accumulates *simulated* oracle latency on a virtual clock, which lets the
  "vary the oracle cost" experiments (Figures 7d, 8a, 8b) run instantly, and
* optionally enforces a hard call budget.

Two resolution paths exist.  :meth:`DistanceOracle.__call__` evaluates the
distance function inline — the classic synchronous path.  :meth:`record`
commits an *externally computed* value with identical validation and
accounting; it is the commit half of the batched execution pipeline
(:mod:`repro.exec`), which evaluates the distance function on worker threads
and commits results in deterministic order on the caller's thread.  Both
paths funnel through one charging routine, so subclasses observing charges
(:class:`~repro.harness.tracing.TracingOracle`,
:class:`~repro.core.validation.ValidatingOracle`) override the single
:meth:`_on_charged` hook instead of ``__call__``.

The surface every consumer actually relies on — call, record,
resolve_batch, stats, plus the ``n``/``calls`` accounting properties — is
codified by the :class:`Oracle` protocol, so alternative implementations
(the tiered weak/strong composition in :mod:`repro.core.tiering`, test
doubles) can stand in for :class:`DistanceOracle` anywhere the library
accepts one.
"""

from __future__ import annotations

import contextlib
import math
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Protocol, Tuple, runtime_checkable

from repro.core.exceptions import BudgetExceededError, InvalidObjectError

DistanceFn = Callable[[int, int], float]

Pair = Tuple[int, int]


def canonical_pair(i: int, j: int) -> Tuple[int, int]:
    """Return ``(min(i, j), max(i, j))`` — the canonical undirected pair key."""
    if i <= j:
        return (i, j)
    return (j, i)


@dataclass(frozen=True)
class OracleStats:
    """Immutable snapshot of an oracle's accounting counters.

    The classic three-field constructor ``OracleStats(calls, cache_hits,
    simulated_seconds)`` is still accepted; the fault-tolerance counters
    (``retries``, ``timeouts``) default to zero so snapshots taken before
    and after the batched-execution pipeline remain subtractable.
    """

    calls: int
    cache_hits: int
    simulated_seconds: float
    retries: int = 0
    timeouts: int = 0

    def __sub__(self, other: "OracleStats") -> "OracleStats":
        return OracleStats(
            calls=self.calls - other.calls,
            cache_hits=self.cache_hits - other.cache_hits,
            simulated_seconds=self.simulated_seconds - other.simulated_seconds,
            retries=self.retries - other.retries,
            timeouts=self.timeouts - other.timeouts,
        )


@runtime_checkable
class Oracle(Protocol):
    """Protocol for anything that answers (and accounts for) distance calls.

    :class:`DistanceOracle` and its subclasses satisfy it structurally, as
    does :class:`~repro.core.tiering.TieredOracle`.  Consumers that accept
    "an oracle" (resolvers, batchers, engines) need exactly this surface:

    * ``oracle(i, j)`` — resolve one pair, charging on the first request;
    * ``record(i, j, value)`` — commit an externally computed distance with
      identical accounting (the batched pipeline's commit half);
    * ``resolve_batch(pairs)`` — many pairs, serial reference semantics;
    * ``stats()`` — an :class:`OracleStats` snapshot;
    * ``n`` / ``calls`` — universe size and charged-call count.

    ``isinstance(obj, Oracle)`` checks member presence only (the usual
    runtime-checkable protocol semantics), not signatures.
    """

    @property
    def n(self) -> int:
        """Size of the object universe."""
        ...

    @property
    def calls(self) -> int:
        """Number of charged oracle invocations so far."""
        ...

    def __call__(self, i: int, j: int) -> float:
        """Return ``dist(i, j)``, charging on the first request for the pair."""
        ...

    def record(self, i: int, j: int, value: float) -> float:
        """Commit an externally computed distance with full accounting."""
        ...

    def resolve_batch(self, pairs: Iterable[Pair]) -> list[float]:
        """Resolve many pairs, returning distances in input order."""
        ...

    def stats(self) -> OracleStats:
        """Snapshot the accounting counters."""
        ...


class DistanceOracle:
    """Expensive-distance-call accountant over ``n`` objects.

    Parameters
    ----------
    distance_fn:
        Symmetric, non-negative distance function over object ids
        ``0 .. n - 1``.  It is only consulted on the first request for a pair.
    n:
        Number of objects in the universe.
    cost_per_call:
        Simulated latency, in seconds, charged to the virtual clock per
        uncached call.  Defaults to 0 (count-only accounting).  Keyword-only.
    budget:
        Optional hard cap on uncached calls; exceeding it raises
        :class:`~repro.core.exceptions.BudgetExceededError`.  Keyword-only.
    """

    def __init__(
        self,
        distance_fn: DistanceFn,
        n: int,
        *,
        cost_per_call: float = 0.0,
        budget: int | None = None,
    ) -> None:
        if n <= 0:
            raise InvalidObjectError(0, n)
        if cost_per_call < 0:
            raise ValueError("cost_per_call must be non-negative")
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self._fn = distance_fn
        self._n = n
        self._cost_per_call = cost_per_call
        self._budget = budget
        self._cache: Dict[Tuple[int, int], float] = {}
        self._calls = 0
        self._cache_hits = 0
        self._simulated_seconds = 0.0
        self._batch_requests = 0
        self._retries = 0
        self._timeouts = 0
        self._listeners: List[Callable[[int, int, float], None]] = []
        #: Identifier of the batch currently being committed (None outside
        #: batched commits); surfaced by tracing.
        self.active_batch: int | None = None

    # -- accounting -------------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the object universe."""
        return self._n

    @property
    def calls(self) -> int:
        """Number of uncached (charged) oracle invocations so far."""
        return self._calls

    @property
    def cache_hits(self) -> int:
        """Number of requests answered from the cache (not charged)."""
        return self._cache_hits

    @property
    def simulated_seconds(self) -> float:
        """Virtual oracle latency accumulated so far."""
        return self._simulated_seconds

    @property
    def cost_per_call(self) -> float:
        """Simulated latency charged per uncached call."""
        return self._cost_per_call

    @property
    def retries(self) -> int:
        """Failed attempts that were retried by an execution pipeline."""
        return self._retries

    @property
    def timeouts(self) -> int:
        """Attempts that timed out in an execution pipeline."""
        return self._timeouts

    @property
    def distance_fn(self) -> DistanceFn:
        """The raw distance function (for executors that evaluate off-thread).

        The function must be safe to call from worker threads when paired
        with a concurrent executor; all accounting stays on the committing
        thread.
        """
        return self._fn

    def stats(self) -> OracleStats:
        """Snapshot the counters (subtract two snapshots to meter a phase)."""
        return OracleStats(
            self._calls,
            self._cache_hits,
            self._simulated_seconds,
            self._retries,
            self._timeouts,
        )

    def reset(self) -> None:
        """Zero every counter and drop the cache (listeners are kept)."""
        self._cache.clear()
        self._calls = 0
        self._cache_hits = 0
        self._simulated_seconds = 0.0
        self._batch_requests = 0
        self._retries = 0
        self._timeouts = 0

    def note_retries(self, count: int = 1) -> None:
        """Account ``count`` retried attempts (called by executors)."""
        if count < 0:
            raise ValueError("retry count must be non-negative")
        self._retries += count

    def note_timeouts(self, count: int = 1) -> None:
        """Account ``count`` timed-out attempts (called by executors)."""
        if count < 0:
            raise ValueError("timeout count must be non-negative")
        self._timeouts += count

    def refund_simulated(self, seconds: float) -> None:
        """Credit the virtual clock (used when calls overlap in a batch).

        Concurrent executors charge a batch of ``B`` fresh calls
        ``ceil(B / workers)`` latency units instead of ``B``; the difference
        is refunded through this method so ``simulated_seconds`` reflects
        the *elapsed* (wall-clock) latency, not the summed per-call latency.
        """
        if seconds < 0:
            raise ValueError("refund must be non-negative")
        self._simulated_seconds -= seconds

    def subscribe(self, listener: Callable[[int, int, float], None]) -> None:
        """Register ``listener(i, j, distance)`` to run on every charged call.

        Used by write-through cache backends; listeners survive
        :meth:`reset`.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[int, int, float], None]) -> None:
        """Remove a previously registered charge listener."""
        self._listeners.remove(listener)

    # -- distance access ---------------------------------------------------

    def is_resolved(self, i: int, j: int) -> bool:
        """Return True when the pair's distance is already cached."""
        return canonical_pair(i, j) in self._cache

    def __call__(self, i: int, j: int) -> float:
        """Return ``dist(i, j)``, charging the oracle on the first request."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return 0.0
        key = canonical_pair(i, j)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._check_budget()
        value = float(self._fn(key[0], key[1]))
        return self._charge(key, value)

    def record(self, i: int, j: int, value: float) -> float:
        """Commit an externally computed distance with full accounting.

        The charged-call counter, budget, simulated clock, validation, and
        observer hooks behave exactly as for :meth:`__call__`; only the
        evaluation of the distance function is skipped.  Committing a pair
        that is already cached is an idempotent no-op returning the cached
        value.  This is the commit half of :class:`repro.exec.BatchOracle`.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return 0.0
        key = canonical_pair(i, j)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self._check_budget()
        return self._charge(key, float(value))

    def seed(self, i: int, j: int, value: float) -> bool:
        """Pre-fill the cache with a known distance, free of charge.

        Returns True when the pair was newly seeded.  Used when resuming
        from persisted distance sets — the run never re-pays for a pair a
        previous session already bought.
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return False
        key = canonical_pair(i, j)
        if key in self._cache:
            return False
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"cannot seed invalid distance {value} for {key}; "
                "distances must be finite and non-negative"
            )
        self._cache[key] = value
        return True

    def forget(self, i: int) -> int:
        """Drop every cached pair touching object ``i``; return the count.

        Required when an object id is removed or recycled: the cache must
        never answer for a new object with the old incarnation's distances.
        Counters are untouched — the history of charged calls stands.
        """
        self._check_index(i)
        stale = [key for key in self._cache if key[0] == i or key[1] == i]
        for key in stale:
            del self._cache[key]
        return len(stale)

    def grow(self, new_n: int) -> None:
        """Extend the object universe to ``new_n`` ids (growth only)."""
        if new_n < self._n:
            raise ValueError(
                f"cannot shrink the universe from {self._n} to {new_n}; "
                "removed ids are tombstoned, not dropped"
            )
        self._n = new_n

    def resolve_batch(self, pairs: Iterable[Pair]) -> list[float]:
        """Resolve many pairs, returning their distances in input order.

        Each uncached element is charged as an individual call — this is the
        serial reference semantics that :class:`repro.exec.BatchOracle`
        reproduces concurrently.  Contrast with :meth:`batch`, which models
        a distance-matrix endpoint charging one latency unit per request.
        """
        return [self(i, j) for i, j in pairs]

    def batch(self, pairs: Iterable[Pair]) -> list[float]:
        """Resolve many pairs in one logical request.

        Real distance services (maps distance-matrix endpoints, batched
        embedding comparisons) accept many elements per request; callers
        that can batch should.  Accounting: every *uncached* element is
        charged as usual, but the whole batch adds only **one** unit of
        simulated latency — the per-request cost model of such APIs.
        Returns the distances in input order.
        """
        results: list[float] = []
        fresh = 0
        for i, j in pairs:
            before = self._calls
            results.append(self(i, j))
            if self._calls != before:
                fresh += 1
                # Refund the per-call latency; the batch is priced once.
                self._simulated_seconds -= self._cost_per_call
        if fresh:
            self._simulated_seconds += self._cost_per_call
            self._batch_requests += 1
        return results

    @property
    def batch_requests(self) -> int:
        """Number of non-empty batched requests issued so far."""
        return self._batch_requests

    def peek(self, i: int, j: int) -> float | None:
        """Return the cached distance for ``(i, j)`` or None, free of charge."""
        if i == j:
            return 0.0
        return self._cache.get(canonical_pair(i, j))

    @contextlib.contextmanager
    def in_batch(self, batch_id: int):
        """Label charges committed inside the context with ``batch_id``.

        Tracing oracles surface the label, which lets traces distinguish
        batched commits from inline resolutions.
        """
        previous = self.active_batch
        self.active_batch = batch_id
        try:
            yield self
        finally:
            self.active_batch = previous

    # -- internals ----------------------------------------------------------

    def _charge(self, key: Pair, value: float) -> float:
        """Validate, count, cache, and notify observers of one fresh call."""
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"distance_fn returned invalid distance {value} for {key}; "
                "distances must be finite and non-negative"
            )
        self._calls += 1
        self._simulated_seconds += self._cost_per_call
        self._cache[key] = value
        self._on_charged(key, value)
        for listener in self._listeners:
            listener(key[0], key[1], value)
        return value

    def _on_charged(self, key: Pair, value: float) -> None:
        """Subclass hook: observe one charged call (tracing, validation)."""

    def _check_budget(self) -> None:
        if self._budget is not None and self._calls >= self._budget:
            raise BudgetExceededError(self._budget)

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise InvalidObjectError(i, self._n)


class WallClockOracle(DistanceOracle):
    """Oracle variant that also meters *real* seconds spent in the metric.

    Useful when the underlying distance function is genuinely expensive (e.g.
    edit distance on long strings) and the experiment wants the measured
    oracle time rather than a simulated one.
    """

    def __init__(self, distance_fn: DistanceFn, n: int, budget: int | None = None) -> None:
        super().__init__(distance_fn, n, cost_per_call=0.0, budget=budget)
        self._wall_seconds = 0.0
        self._inner = distance_fn
        # Route calls through the timing shim without re-plumbing __call__.
        self._fn = self._timed

    def _timed(self, i: int, j: int) -> float:
        start = time.perf_counter()
        value = self._inner(i, j)
        self._wall_seconds += time.perf_counter() - start
        return value

    @property
    def wall_seconds(self) -> float:
        """Real seconds spent inside the distance function."""
        return self._wall_seconds


class ComparisonOracle:
    """Comparison-only oracle mode: answers orderings but never a number.

    *Comparison Based Nearest Neighbor Search* (arXiv 1704.01460) shows that
    navigable-graph search needs only ordering queries — "is ``d(*a) <
    d(*b)``?" — never a distance magnitude.  This wrapper is that mode: it
    exposes :meth:`less`/:meth:`compare`/:meth:`rank_less` over pairs of
    object ids while keeping every numeric distance private, and it counts
    the ordering queries it answers (``comparisons``; surfaced as the
    ``repro_comparison_calls_total`` metric via
    :func:`repro.obs.bridge.comparison_call_counter`).

    Two sources are accepted.  A :class:`~repro.core.resolver.SmartResolver`
    (anything exposing pair-predicate ``compare``/``less`` methods) is the
    bound-accelerated path: orderings settled by triangle-inequality bounds
    or the provider's ``decide_less`` joint test cost no oracle call at all.
    A plain numeric source — a :class:`DistanceOracle` or bare ``(i, j) ->
    float`` callable — is the reference path: distances are evaluated
    internally and immediately reduced to a sign, so the caller still never
    sees a magnitude.
    """

    def __init__(self, source: Any) -> None:
        compare = getattr(source, "compare", None)
        less = getattr(source, "less", None)
        if callable(compare) and callable(less):
            self._compare_pairs: Callable[[Pair, Pair], int] = compare
            self._less_pairs: Callable[[Pair, Pair], bool] = less
        elif callable(source):
            self._compare_pairs = self._numeric_compare
            self._less_pairs = self._numeric_less
            self._fn = source
        else:
            raise TypeError(
                "ComparisonOracle needs a resolver with compare/less pair "
                "predicates or a numeric (i, j) -> float source"
            )
        #: Ordering queries answered so far — this mode's cost metric.
        self.comparisons = 0

    def _numeric_distance(self, pair: Pair) -> float:
        i, j = pair
        if i == j:
            return 0.0
        return float(self._fn(i, j))

    def _numeric_compare(self, a: Pair, b: Pair) -> int:
        da = self._numeric_distance(a)
        db = self._numeric_distance(b)
        return (da > db) - (da < db)

    def _numeric_less(self, a: Pair, b: Pair) -> bool:
        return self._numeric_distance(a) < self._numeric_distance(b)

    def less(self, a: Pair, b: Pair) -> bool:
        """Exact answer to ``d(*a) < d(*b)`` — one ordering query."""
        self.comparisons += 1
        return self._less_pairs(a, b)

    def compare(self, a: Pair, b: Pair) -> int:
        """Exact sign of ``d(*a) - d(*b)`` — one ordering query."""
        self.comparisons += 1
        return self._compare_pairs(a, b)

    def rank_less(self, q: int, x: int, y: int) -> bool:
        """Does ``x`` rank strictly before ``y`` as a neighbour of ``q``?

        Orders by ``(d(q, ·), id)``: distance first, object id breaking exact
        ties, so comparison-only search visits nodes in the same order as
        numeric search resolving the same ties.  Counts as one ordering
        query.
        """
        c = self.compare((q, x), (q, y))
        return c < 0 or (c == 0 and x < y)
