"""Distance oracle abstraction with call accounting.

The paper's central cost model charges every *distance oracle* invocation —
a Google Maps request, an edit-distance computation on long sequences, an
image comparison — far more than any local CPU work.  :class:`DistanceOracle`
wraps an arbitrary symmetric distance function over integer object ids and

* counts calls (the paper's primary evaluation metric),
* caches results so a pair is never charged twice,
* accumulates *simulated* oracle latency on a virtual clock, which lets the
  "vary the oracle cost" experiments (Figures 7d, 8a, 8b) run instantly, and
* optionally enforces a hard call budget.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.core.exceptions import BudgetExceededError, InvalidObjectError

DistanceFn = Callable[[int, int], float]


def canonical_pair(i: int, j: int) -> Tuple[int, int]:
    """Return ``(min(i, j), max(i, j))`` — the canonical undirected pair key."""
    if i <= j:
        return (i, j)
    return (j, i)


@dataclass(frozen=True)
class OracleStats:
    """Immutable snapshot of an oracle's accounting counters."""

    calls: int
    cache_hits: int
    simulated_seconds: float

    def __sub__(self, other: "OracleStats") -> "OracleStats":
        return OracleStats(
            calls=self.calls - other.calls,
            cache_hits=self.cache_hits - other.cache_hits,
            simulated_seconds=self.simulated_seconds - other.simulated_seconds,
        )


class DistanceOracle:
    """Expensive-distance-call accountant over ``n`` objects.

    Parameters
    ----------
    distance_fn:
        Symmetric, non-negative distance function over object ids
        ``0 .. n - 1``.  It is only consulted on the first request for a pair.
    n:
        Number of objects in the universe.
    cost_per_call:
        Simulated latency, in seconds, charged to the virtual clock per
        uncached call.  Defaults to 0 (count-only accounting).
    budget:
        Optional hard cap on uncached calls; exceeding it raises
        :class:`~repro.core.exceptions.BudgetExceededError`.
    """

    def __init__(
        self,
        distance_fn: DistanceFn,
        n: int,
        cost_per_call: float = 0.0,
        budget: int | None = None,
    ) -> None:
        if n <= 0:
            raise InvalidObjectError(0, n)
        if cost_per_call < 0:
            raise ValueError("cost_per_call must be non-negative")
        if budget is not None and budget < 0:
            raise ValueError("budget must be non-negative")
        self._fn = distance_fn
        self._n = n
        self._cost_per_call = cost_per_call
        self._budget = budget
        self._cache: Dict[Tuple[int, int], float] = {}
        self._calls = 0
        self._cache_hits = 0
        self._simulated_seconds = 0.0
        self._batch_requests = 0

    # -- accounting -------------------------------------------------------

    @property
    def n(self) -> int:
        """Size of the object universe."""
        return self._n

    @property
    def calls(self) -> int:
        """Number of uncached (charged) oracle invocations so far."""
        return self._calls

    @property
    def cache_hits(self) -> int:
        """Number of requests answered from the cache (not charged)."""
        return self._cache_hits

    @property
    def simulated_seconds(self) -> float:
        """Virtual oracle latency accumulated so far."""
        return self._simulated_seconds

    @property
    def cost_per_call(self) -> float:
        """Simulated latency charged per uncached call."""
        return self._cost_per_call

    def stats(self) -> OracleStats:
        """Snapshot the counters (subtract two snapshots to meter a phase)."""
        return OracleStats(self._calls, self._cache_hits, self._simulated_seconds)

    def reset(self) -> None:
        """Zero every counter and drop the cache."""
        self._cache.clear()
        self._calls = 0
        self._cache_hits = 0
        self._simulated_seconds = 0.0
        self._batch_requests = 0

    # -- distance access ---------------------------------------------------

    def is_resolved(self, i: int, j: int) -> bool:
        """Return True when the pair's distance is already cached."""
        return canonical_pair(i, j) in self._cache

    def __call__(self, i: int, j: int) -> float:
        """Return ``dist(i, j)``, charging the oracle on the first request."""
        self._check_index(i)
        self._check_index(j)
        if i == j:
            return 0.0
        key = canonical_pair(i, j)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache_hits += 1
            return cached
        if self._budget is not None and self._calls >= self._budget:
            raise BudgetExceededError(self._budget)
        value = float(self._fn(key[0], key[1]))
        if not math.isfinite(value) or value < 0:
            raise ValueError(
                f"distance_fn returned invalid distance {value} for {key}; "
                "distances must be finite and non-negative"
            )
        self._calls += 1
        self._simulated_seconds += self._cost_per_call
        self._cache[key] = value
        return value

    def batch(self, pairs) -> list[float]:
        """Resolve many pairs in one logical request.

        Real distance services (maps distance-matrix endpoints, batched
        embedding comparisons) accept many elements per request; callers
        that can batch should.  Accounting: every *uncached* element is
        charged as usual, but the whole batch adds only **one** unit of
        simulated latency — the per-request cost model of such APIs.
        Returns the distances in input order.
        """
        results: list[float] = []
        fresh = 0
        for i, j in pairs:
            before = self._calls
            results.append(self(i, j))
            if self._calls != before:
                fresh += 1
                # Refund the per-call latency; the batch is priced once.
                self._simulated_seconds -= self._cost_per_call
        if fresh:
            self._simulated_seconds += self._cost_per_call
            self._batch_requests += 1
        return results

    @property
    def batch_requests(self) -> int:
        """Number of non-empty batched requests issued so far."""
        return self._batch_requests

    def peek(self, i: int, j: int) -> float | None:
        """Return the cached distance for ``(i, j)`` or None, free of charge."""
        if i == j:
            return 0.0
        return self._cache.get(canonical_pair(i, j))

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise InvalidObjectError(i, self._n)


class WallClockOracle(DistanceOracle):
    """Oracle variant that also meters *real* seconds spent in the metric.

    Useful when the underlying distance function is genuinely expensive (e.g.
    edit distance on long strings) and the experiment wants the measured
    oracle time rather than a simulated one.
    """

    def __init__(self, distance_fn: DistanceFn, n: int, budget: int | None = None) -> None:
        super().__init__(distance_fn, n, cost_per_call=0.0, budget=budget)
        self._wall_seconds = 0.0
        self._inner = distance_fn
        # Route calls through the timing shim without re-plumbing __call__.
        self._fn = self._timed

    def _timed(self, i: int, j: int) -> float:
        start = time.perf_counter()
        value = self._inner(i, j)
        self._wall_seconds += time.perf_counter() - start
        return value

    @property
    def wall_seconds(self) -> float:
        """Real seconds spent inside the distance function."""
        return self._wall_seconds
