"""Two-tier weak/strong distance oracles behind the :class:`Oracle` protocol.

*Metric Clustering and MST with Strong and Weak Distance Oracles* (Gershtein
et al., arXiv 2310.15863) observes that many expensive metrics come with a
cheap companion: an estimator whose answer is wrong, but wrong by a *known,
bounded factor* — an embedding distance for strings, the crow-flies distance
for a road network, a low-dimensional projection for feature vectors.  This
module composes such a **weak oracle** with the exact **strong oracle** so
that the weak tier absorbs most of the cost while every final answer stays
byte-identical to a strong-only run:

* :class:`WeakBand` — the error-band contract ``lo·e <= d <= hi·e``;
* :class:`WeakOracle` — a :class:`~repro.core.oracle.DistanceOracle` whose
  answers are estimates carrying a declared band (it inherits all caching,
  counting, and batching machinery, so :class:`repro.exec.BatchOracle` can
  wrap it unchanged);
* :class:`WeakBoundProvider` — turns each weak estimate into a *sound*
  lower/upper interval and feeds it to the bound engine as a first-class
  :class:`~repro.core.bounds.BoundProvider`, so weak answers tighten
  :class:`~repro.core.resolver.SmartResolver` bounds and order candidate
  resolution exactly like any other scheme;
* :class:`TieredOracle` — the weak+strong composition.  It satisfies the
  :class:`~repro.core.oracle.Oracle` protocol by delegating exact
  resolution to the strong tier, and hands out bound providers wired to the
  weak tier.

Exactness is preserved for the same reason every bound scheme preserves it:
the weak tier only ever contributes *intervals*.  The resolver still falls
back to the strong oracle whenever bounds stay inconclusive, so the
resolved-distance values — and hence all outputs — never depend on the
estimates, only the number of strong calls does.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.core.bounds import BaseBoundProvider, Bounds, IntersectionBounder
from repro.core.oracle import DistanceFn, DistanceOracle, OracleStats, Pair, canonical_pair
from repro.core.partial_graph import PartialDistanceGraph

__all__ = [
    "WeakBand",
    "WeakOracle",
    "WeakBoundProvider",
    "TieredOracle",
]


@dataclass(frozen=True)
class WeakBand:
    """Declared multiplicative error band of a weak oracle.

    An estimate ``e`` with band ``(lo_factor, hi_factor)`` guarantees

        ``lo_factor * e  <=  d  <=  hi_factor * e``

    for the true distance ``d``.  ``hi_factor`` may be ``inf``, declaring a
    pure lower-bound estimator (e.g. crow-flies distance under a road
    metric: the road is never shorter, but may be arbitrarily longer).
    ``lo_factor`` may exceed 1 when the estimator systematically
    *under*-estimates by a known factor.

    The soundness of every bound derived here rests on the band actually
    holding; a violated band can silently change outputs, which is why the
    property tests (``tests/core/test_weak_strong_properties.py``) pin the
    contract.
    """

    lo_factor: float
    hi_factor: float

    def __post_init__(self) -> None:
        if not (self.lo_factor >= 0 and math.isfinite(self.lo_factor)):
            raise ValueError(f"lo_factor must be finite and >= 0, got {self.lo_factor}")
        if not self.hi_factor >= self.lo_factor:
            raise ValueError(
                f"hi_factor ({self.hi_factor}) must be >= lo_factor ({self.lo_factor})"
            )

    @property
    def is_lower_bound_only(self) -> bool:
        """True when the band carries no upper-bound information."""
        return math.isinf(self.hi_factor)

    def interval(self, estimate: float) -> Bounds:
        """The interval the band guarantees around one estimate.

        ``0 * inf`` is guarded: a zero estimate under an infinite
        ``hi_factor`` yields ``[0, inf]``, not NaN.
        """
        if estimate < 0:
            raise ValueError(f"weak estimates must be non-negative, got {estimate}")
        lower = estimate * self.lo_factor
        upper = math.inf if math.isinf(self.hi_factor) else estimate * self.hi_factor
        return Bounds(lower, upper)


def _coerce_band(band) -> WeakBand:
    """Accept a :class:`WeakBand` or a ``(lo, hi)`` tuple."""
    if isinstance(band, WeakBand):
        return band
    lo, hi = band
    return WeakBand(float(lo), float(hi))


class WeakOracle(DistanceOracle):
    """A cheap estimator with a declared error band.

    Subclasses :class:`DistanceOracle`, so estimates are cached, counted,
    and committable through :meth:`record` exactly like exact distances —
    which is what lets :class:`repro.exec.BatchOracle` batch weak calls with
    zero new machinery.  ``weak.calls`` is therefore the number of *charged
    weak estimates*, kept entirely separate from the strong tier's count.

    Parameters
    ----------
    estimate_fn:
        Symmetric, non-negative estimator over object ids.
    n:
        Number of objects in the universe.
    band:
        A :class:`WeakBand` or ``(lo_factor, hi_factor)`` tuple describing
        the guarantee ``lo·e <= d <= hi·e``.
    name:
        Short label surfaced in provider names and reports.
    cost_per_call / budget:
        As on :class:`DistanceOracle` (weak calls are cheap but not
        necessarily free — e.g. a sampled edit distance).
    """

    def __init__(
        self,
        estimate_fn: DistanceFn,
        n: int,
        band,
        *,
        name: str = "weak",
        cost_per_call: float = 0.0,
        budget: int | None = None,
    ) -> None:
        super().__init__(estimate_fn, n, cost_per_call=cost_per_call, budget=budget)
        self.band = _coerce_band(band)
        self.name = str(name)

    def interval(self, i: int, j: int) -> Bounds:
        """The band interval around this pair's estimate (charges the weak tier)."""
        if i == j:
            return Bounds(0.0, 0.0)
        return self.band.interval(self(i, j))


class WeakBoundProvider(BaseBoundProvider):
    """Bound provider backed by a weak oracle's banded estimates.

    Each query resolves the pair's weak estimate (cached after the first
    request) and intersects the band interval with the trivial bounds, so
    the answer is always at least as tight as knowing nothing.  With a
    ``batcher`` (a :class:`repro.exec.BatchOracle` wrapping the *weak*
    oracle), :meth:`bounds_many` prefetches a whole frontier's estimates as
    one batch — the aggressive-batching path the resolver's frontier
    queries (``argmin``/``knearest``/``prefetch_thresholds``) hit.

    Counters: :attr:`weak_calls` mirrors the weak oracle's charged calls;
    :attr:`weak_band` counts queries whose interval was strictly tightened
    by the band (the number that flows into
    ``ResolverStats.weak_band``).

    ``lock`` serialises weak-tier mutation for multi-threaded hosts (the
    service engine queries bounds from concurrent jobs); single-threaded
    callers leave it None.
    """

    def __init__(
        self,
        graph: PartialDistanceGraph,
        weak: WeakOracle,
        max_distance: float = math.inf,
        batcher=None,
        lock=None,
    ) -> None:
        super().__init__(graph, max_distance)
        if weak.n != graph.n:
            raise ValueError(
                f"weak oracle universe ({weak.n}) does not match graph ({graph.n})"
            )
        if batcher is not None and batcher.oracle is not weak:
            raise ValueError("batcher must wrap the same WeakOracle as the provider")
        self.weak = weak
        self.batcher = batcher
        self._lock = lock if lock is not None else contextlib.nullcontext()
        self.name = f"weak[{weak.name}]"
        #: Bound queries whose interval the band strictly tightened.
        self.weak_band = 0

    @property
    def weak_calls(self) -> int:
        """Charged weak-oracle estimates so far."""
        return self.weak.calls

    def bounds(self, i: int, j: int) -> Bounds:
        trivial = self.trivial_bounds(i, j)
        if trivial.is_exact:
            return trivial
        with self._lock:
            estimate = self.weak(i, j)
        out = trivial.intersect(self.weak.band.interval(estimate))
        if out.lower > trivial.lower or out.upper < trivial.upper:
            self.weak_band += 1
        return out

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Batch path: prefetch unknown estimates in one weak-tier batch."""
        pairs = list(pairs)
        if self.batcher is not None:
            todo = sorted(
                {
                    canonical_pair(i, j)
                    for i, j in pairs
                    if i != j
                    and self.graph.get(i, j) is None
                    and self.weak.peek(i, j) is None
                }
            )
            if todo:
                with self._lock:
                    self.batcher.resolve_many(todo)
        return [self.bounds(i, j) for i, j in pairs]


class TieredOracle:
    """Weak+strong oracle composition satisfying the :class:`Oracle` protocol.

    Exact resolution (``__call__``/``record``/``resolve_batch``) delegates
    to the **strong** tier, so a :class:`~repro.core.resolver.SmartResolver`
    driven by the strong oracle and a :meth:`bounder`-built provider
    produces byte-identical outputs to a strong-only run.  The **weak**
    tier is consulted only through bound providers, and its calls are
    routed through a :class:`repro.exec.BatchOracle` so frontier prefetches
    go out as batches.

    Parameters
    ----------
    strong:
        The exact (expensive) oracle.
    weak:
        The banded estimator over the same universe.
    weak_executor:
        Executor for the weak tier's batcher — ``None`` (serial), an
        executor name (``"serial"``/``"threaded"``), or a ready
        :class:`~repro.exec.executor.BaseExecutor`.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        :meth:`instrument` runs at construction (the unified convention).
    """

    def __init__(
        self,
        strong: DistanceOracle,
        weak: WeakOracle,
        *,
        weak_executor=None,
        registry=None,
    ) -> None:
        if weak.n != strong.n:
            raise ValueError(
                f"weak oracle universe ({weak.n}) does not match strong ({strong.n})"
            )
        self.strong = strong
        self.weak = weak
        # Imported lazily: repro.exec imports repro.core, not the reverse.
        from repro.exec.batch_oracle import BatchOracle
        from repro.exec.executor import make_executor

        if isinstance(weak_executor, str):
            weak_executor = make_executor(weak_executor)
        self.weak_batcher = BatchOracle(weak, executor=weak_executor)
        self._providers: List[WeakBoundProvider] = []
        self.registry = registry
        if registry is not None:
            self.instrument(registry)

    # -- Oracle protocol (delegating to the strong tier) ---------------------

    @property
    def n(self) -> int:
        """Size of the object universe."""
        return self.strong.n

    @property
    def calls(self) -> int:
        """Charged *strong* calls — the paper's expensive resource."""
        return self.strong.calls

    @property
    def distance_fn(self) -> DistanceFn:
        """The strong tier's raw distance function."""
        return self.strong.distance_fn

    def __call__(self, i: int, j: int) -> float:
        """Exact distance through the strong tier."""
        return self.strong(i, j)

    def record(self, i: int, j: int, value: float) -> float:
        """Commit an externally computed exact distance to the strong tier."""
        return self.strong.record(i, j, value)

    def seed(self, i: int, j: int, value: float) -> bool:
        """Pre-fill the strong cache free of charge."""
        return self.strong.seed(i, j, value)

    def peek(self, i: int, j: int) -> Optional[float]:
        """The strong tier's cached distance, or None."""
        return self.strong.peek(i, j)

    def is_resolved(self, i: int, j: int) -> bool:
        """True when the strong tier already knows the pair."""
        return self.strong.is_resolved(i, j)

    def resolve_batch(self, pairs: Iterable[Pair]) -> list[float]:
        """Exact distances for many pairs through the strong tier."""
        return self.strong.resolve_batch(pairs)

    def stats(self) -> OracleStats:
        """The strong tier's accounting snapshot."""
        return self.strong.stats()

    def reset(self) -> None:
        """Reset both tiers' counters and caches."""
        self.strong.reset()
        self.weak.reset()

    # -- tier accounting -----------------------------------------------------

    @property
    def strong_calls(self) -> int:
        """Charged strong (exact) calls."""
        return self.strong.calls

    @property
    def weak_calls(self) -> int:
        """Charged weak (estimate) calls."""
        return self.weak.calls

    @property
    def weak_band(self) -> int:
        """Bound queries tightened by the band, across providers built here."""
        return sum(p.weak_band for p in self._providers)

    @property
    def band(self) -> WeakBand:
        """The weak tier's declared error band."""
        return self.weak.band

    # -- bound-provider factory ----------------------------------------------

    def bounder(
        self,
        graph: PartialDistanceGraph,
        base=None,
        max_distance: float = math.inf,
        lock=None,
    ):
        """A bound provider feeding weak intervals into the resolver.

        With ``base`` (an existing scheme such as Tri), returns an
        :class:`~repro.core.bounds.IntersectionBounder` of base ∩ weak —
        at least as tight as either alone on every query.  Without one,
        returns the bare :class:`WeakBoundProvider`.
        """
        provider = WeakBoundProvider(
            graph,
            self.weak,
            max_distance=max_distance,
            batcher=self.weak_batcher,
            lock=lock,
        )
        self._providers.append(provider)
        if base is None:
            return provider
        return IntersectionBounder(graph, [base, provider], max_distance)

    def attach(self, resolver, max_distance: float = math.inf):
        """Wrap ``resolver``'s current provider with the weak tier.

        Replaces ``resolver.bounder`` by base ∩ weak over the resolver's own
        graph (clearing its bound memo, as any provider swap does) and
        returns the new provider.
        """
        new = self.bounder(resolver.graph, base=resolver.bounder, max_distance=max_distance)
        resolver.bounder = new
        return new

    # -- observability -------------------------------------------------------

    def instrument(self, registry) -> None:
        """Expose tier accounting on a ``repro.obs`` metrics registry.

        Callback-backed (each tier stays the single writer of its counter),
        under names distinct from the resolver's ``repro_resolver_weak_*``
        delta-published counters so the two surfaces never double-count.
        """
        registry.counter(
            "repro_weak_oracle_calls_total",
            "Charged weak-tier (banded estimate) oracle calls.",
            fn=lambda: self.weak.calls,
        )
        registry.counter(
            "repro_strong_oracle_calls_total",
            "Charged strong-tier (exact) oracle calls.",
            fn=lambda: self.strong.calls,
        )
        registry.counter(
            "repro_weak_band_tightenings_total",
            "Bound queries strictly tightened by the weak error band.",
            fn=lambda: self.weak_band,
        )

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Shut down the weak tier's batch executor."""
        self.weak_batcher.close()

    def __enter__(self) -> "TieredOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
