"""Bound values and the provider protocol shared by every scheme.

A *bound provider* answers Problem 1 of the paper (BOUNDS: produce a lower
and upper bound on an unknown distance without calling the oracle) and
Problem 2 (UPDATE: absorb a newly resolved edge into its data structures).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.partial_graph import PartialDistanceGraph


@dataclass(frozen=True)
class Bounds:
    """A closed interval ``[lower, upper]`` known to contain a distance."""

    lower: float
    upper: float

    def __post_init__(self) -> None:
        if self.lower < 0:
            object.__setattr__(self, "lower", 0.0)
        if self.upper < self.lower - 1e-12:
            raise ValueError(f"inverted bounds: lower={self.lower} > upper={self.upper}")

    @classmethod
    def list_from_arrays(cls, lowers, uppers) -> List["Bounds"]:
        """Build a list of intervals from parallel arrays, skipping validation.

        Callers must guarantee ``0 <= lower <= upper`` element-wise (the
        kernel sweeps clamp exactly that way); frozen-dataclass ``__init__``
        dominates large frontier sweeps otherwise.  Instances are
        indistinguishable from normally constructed ones.
        """
        new = cls.__new__
        out: List[Bounds] = []
        append = out.append
        for lo, up in zip(lowers.tolist(), uppers.tolist()):
            b = new(cls)
            b.__dict__["lower"] = lo
            b.__dict__["upper"] = up
            append(b)
        return out

    @property
    def gap(self) -> float:
        """Width of the interval (``inf`` when the upper bound is unknown)."""
        return self.upper - self.lower

    @property
    def is_exact(self) -> bool:
        """True when the interval pins the distance to a single value."""
        return self.upper - self.lower <= 1e-12

    def intersect(self, other: "Bounds") -> "Bounds":
        """Tightest interval consistent with both bounds."""
        return Bounds(max(self.lower, other.lower), min(self.upper, other.upper))

    def contains(self, value: float, tol: float = 1e-9) -> bool:
        """True when ``value`` lies within the interval up to ``tol``."""
        return self.lower - tol <= value <= self.upper + tol


#: Bounds carrying no information at all.
UNBOUNDED = Bounds(0.0, math.inf)


@runtime_checkable
class BoundProvider(Protocol):
    """Protocol every bound scheme implements.

    Implementations share a :class:`PartialDistanceGraph`; resolution events
    flow in through :meth:`notify_resolved` (the paper's UPDATE problem) and
    queries through :meth:`bounds` (the BOUNDS problem).
    """

    #: Human-readable scheme name used in reports ("Tri", "SPLUB", ...).
    name: str

    def bounds(self, i: int, j: int) -> Bounds:
        """Lower/upper bounds on ``dist(i, j)`` from known distances only."""
        ...

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Absorb a freshly resolved edge (already added to the graph)."""
        ...

    def decide_less(self, a: Tuple[int, int], b: Tuple[int, int]) -> Optional[bool]:
        """Optionally decide ``dist(*a) < dist(*b)`` without an oracle call.

        Per-pair intervals can overlap even when the *joint* constraint set
        forces an order; schemes able to reason about both pairs at once
        (the Direct Feasibility Test) answer here.  Return True/False for a
        proven verdict, or None when inconclusive — the resolver then falls
        back to resolution.  Most schemes simply return None
        (:class:`BaseBoundProvider` provides that default).
        """
        ...


class BaseBoundProvider:
    """Convenience base: holds the shared graph and a default diameter cap.

    ``max_distance`` plays the role of the paper's normalisation to ``[0, 1]``:
    with no information at all the upper bound is the metric's diameter cap
    (``inf`` when unknown).
    """

    name = "base"

    #: True when :meth:`bounds_many` runs an array kernel instead of the
    #: per-pair loop — the resolver counts such dispatches as
    #: ``vectorized_batches``.
    vectorized_bounds = False

    def __init__(self, graph: PartialDistanceGraph, max_distance: float = math.inf) -> None:
        if max_distance <= 0:
            raise ValueError("max_distance must be positive")
        self.graph = graph
        self.max_distance = float(max_distance)

    def trivial_bounds(self, i: int, j: int) -> Bounds:
        """Bounds knowing nothing beyond the (optional) diameter cap."""
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        return Bounds(0.0, self.max_distance)

    def bounds(self, i: int, j: int) -> Bounds:  # pragma: no cover - abstract
        raise NotImplementedError

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Bounds for a batch of pairs, element-for-element equal to ``bounds``.

        Contract: ``bounds_many(pairs)[k] == bounds(*pairs[k])`` for every
        ``k``, bit-for-bit — batching is a CPU optimisation, never a
        semantic one.  The whole batch is evaluated against the *current*
        graph state (a batch query must not resolve anything, so the state
        cannot move mid-batch).  Schemes with an array kernel (Tri, LAESA)
        override this and set :attr:`vectorized_bounds`; the default simply
        loops.
        """
        return [self.bounds(i, j) for i, j in pairs]

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Default update: nothing beyond the shared graph insert."""

    def decide_less(self, a: Tuple[int, int], b: Tuple[int, int]) -> Optional[bool]:
        """Default joint decision: inconclusive (schemes bound pairs independently)."""
        return None


class TrivialBounder(BaseBoundProvider):
    """The "Without Plug" scheme: no pruning information whatsoever.

    Running a proximity algorithm with this provider reproduces the vanilla
    algorithm's oracle-call count (every comparison resolves).
    """

    name = "none"

    def bounds(self, i: int, j: int) -> Bounds:
        return self.trivial_bounds(i, j)


class IntersectionBounder(BaseBoundProvider):
    """Combine several providers by intersecting their intervals.

    Useful for ablations (e.g. Tri ∩ LAESA) — the result is at least as tight
    as the tightest member on every query.
    """

    def __init__(
        self,
        graph: PartialDistanceGraph,
        providers: list,
        max_distance: float = math.inf,
    ) -> None:
        super().__init__(graph, max_distance)
        if not providers:
            raise ValueError("IntersectionBounder needs at least one provider")
        self.providers = list(providers)
        self.name = "+".join(p.name for p in self.providers)

    def bounds(self, i: int, j: int) -> Bounds:
        result = self.trivial_bounds(i, j)
        for provider in self.providers:
            result = result.intersect(provider.bounds(i, j))
        return result

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Intersect the members' batch answers pair by pair."""
        pairs = list(pairs)
        results = [self.trivial_bounds(i, j) for i, j in pairs]
        for provider in self.providers:
            member = provider.bounds_many(pairs)
            results = [r.intersect(b) for r, b in zip(results, member)]
        return results

    @property
    def dijkstra_runs(self) -> int:
        """Dijkstra computations across members (SPLUB-style schemes)."""
        return sum(getattr(p, "dijkstra_runs", 0) for p in self.providers)

    @property
    def weak_calls(self) -> int:
        """Charged weak-oracle estimates across members (tiered schemes)."""
        return sum(getattr(p, "weak_calls", 0) for p in self.providers)

    @property
    def weak_band(self) -> int:
        """Bound queries tightened by a weak error band, across members."""
        return sum(getattr(p, "weak_band", 0) for p in self.providers)

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        for provider in self.providers:
            provider.notify_resolved(i, j, distance)

    def decide_less(self, a: Tuple[int, int], b: Tuple[int, int]) -> Optional[bool]:
        """First member verdict wins; members never disagree on proven facts."""
        for provider in self.providers:
            verdict = provider.decide_less(a, b)
            if verdict is not None:
                return verdict
        return None
