"""Partial distance graph — the evolving store of resolved distances.

The paper abstracts the problem state as a weighted complete graph in which
only some edges (resolved distances) are *known*.  Every bound provider reads
this structure; every oracle resolution appends one edge.

Two access patterns dominate:

* **Tri Scheme** intersects the adjacency lists of an unknown edge's two
  endpoints to enumerate triangles; the paper keeps per-node balanced BSTs so
  intersection runs in sorted-merge order and insertion costs ``O(log n)``.
  Python's ``bisect`` over a flat list gives the same sorted-merge iteration
  with ``O(log n)`` search and ``O(n)`` worst-case insert, which is faster in
  practice at these sizes than a pointer-based tree; we use it as the BST
  substitute.
* **SPLUB** runs Dijkstra over the known edges, which wants cheap iteration
  over ``(neighbour, weight)`` pairs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.core.exceptions import InvalidObjectError, UnknownDistanceError
from repro.core.oracle import canonical_pair

Edge = Tuple[int, int]


class PartialDistanceGraph:
    """Known-distance store over ``n`` objects with sorted adjacency lists."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise InvalidObjectError(0, n)
        self._n = n
        self._weights: Dict[Edge, float] = {}
        # _adjacency[u] is a sorted list of neighbour ids with known distance.
        self._adjacency: List[List[int]] = [[] for _ in range(n)]

    # -- introspection ------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects (nodes) in the universe."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of known (resolved) edges."""
        return self._weights.items().__len__()

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, pair: Edge) -> bool:
        i, j = pair
        return canonical_pair(i, j) in self._weights

    def has_edge(self, i: int, j: int) -> bool:
        """Return True when ``dist(i, j)`` is known."""
        return canonical_pair(i, j) in self._weights

    def degree(self, i: int) -> int:
        """Number of known edges incident on object ``i``."""
        self._check_index(i)
        return len(self._adjacency[i])

    # -- edge access ----------------------------------------------------------

    def weight(self, i: int, j: int) -> float:
        """Return the known distance for ``(i, j)`` or raise ``UnknownDistanceError``."""
        if i == j:
            return 0.0
        try:
            return self._weights[canonical_pair(i, j)]
        except KeyError:
            raise UnknownDistanceError(i, j) from None

    def get(self, i: int, j: int, default: float | None = None) -> float | None:
        """Return the known distance for ``(i, j)`` or ``default``."""
        if i == j:
            return 0.0
        return self._weights.get(canonical_pair(i, j), default)

    def add_edge(self, i: int, j: int, distance: float) -> bool:
        """Record a resolved distance.

        Returns True when the edge was new, False when it merely re-recorded
        an identical known value.  Conflicting re-insertion raises ValueError
        (a metric distance cannot change).
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise ValueError("self-distances are implicit and always 0")
        if distance < 0:
            raise ValueError(f"negative distance {distance} for edge ({i}, {j})")
        key = canonical_pair(i, j)
        existing = self._weights.get(key)
        if existing is not None:
            if existing != distance:
                raise ValueError(
                    f"edge {key} already known with distance {existing}, "
                    f"refusing to overwrite with {distance}"
                )
            return False
        self._weights[key] = float(distance)
        insort(self._adjacency[key[0]], key[1])
        insort(self._adjacency[key[1]], key[0])
        return True

    # -- iteration --------------------------------------------------------------

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over known edges as ``(i, j, weight)`` with ``i < j``."""
        for (i, j), w in self._weights.items():
            yield i, j, w

    def neighbors(self, i: int) -> Iterable[int]:
        """Sorted ids of objects whose distance to ``i`` is known."""
        self._check_index(i)
        return iter(self._adjacency[i])

    def adjacency_list(self, i: int) -> List[int]:
        """The sorted adjacency array of ``i`` (do not mutate)."""
        self._check_index(i)
        return self._adjacency[i]

    def neighbor_items(self, i: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbour, weight)`` pairs for node ``i``."""
        self._check_index(i)
        weights = self._weights
        for v in self._adjacency[i]:
            yield v, weights[canonical_pair(i, v)]

    def common_neighbors(self, i: int, j: int) -> Iterator[int]:
        """Sorted-merge intersection of the adjacency lists of ``i`` and ``j``.

        This is the triangle-enumeration primitive of the Tri Scheme
        (Algorithm 2 of the paper).
        """
        a = self._adjacency[i]
        b = self._adjacency[j]
        # Iterate over the shorter list and bisect into the longer one when the
        # lists have very different lengths; otherwise do a linear merge.
        if len(a) > len(b):
            a, b = b, a
        if len(b) > 8 * max(len(a), 1):
            for v in a:
                pos = bisect_left(b, v)
                if pos < len(b) and b[pos] == v:
                    yield v
            return
        ia = ib = 0
        while ia < len(a) and ib < len(b):
            va, vb = a[ia], b[ib]
            if va == vb:
                yield va
                ia += 1
                ib += 1
            elif va < vb:
                ia += 1
            else:
                ib += 1

    def unknown_pairs(self) -> Iterator[Edge]:
        """Iterate every pair whose distance is still unknown (i < j)."""
        for i in range(self._n):
            for j in range(i + 1, self._n):
                if (i, j) not in self._weights:
                    yield (i, j)

    def copy(self) -> "PartialDistanceGraph":
        """Deep copy of the graph (weights and adjacency)."""
        clone = PartialDistanceGraph(self._n)
        clone._weights = dict(self._weights)
        clone._adjacency = [list(adj) for adj in self._adjacency]
        return clone

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise InvalidObjectError(i, self._n)
