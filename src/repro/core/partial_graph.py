"""Partial distance graph — the evolving store of resolved distances.

The paper abstracts the problem state as a weighted complete graph in which
only some edges (resolved distances) are *known*.  Every bound provider reads
this structure; every oracle resolution appends one edge.

Two access patterns dominate:

* **Tri Scheme** intersects the adjacency lists of an unknown edge's two
  endpoints to enumerate triangles; the paper keeps per-node balanced BSTs so
  intersection runs in sorted-merge order and insertion costs ``O(log n)``.
  Python's ``bisect`` over a flat list gives the same sorted-merge iteration
  with ``O(log n)`` search and ``O(n)`` worst-case insert, which is faster in
  practice at these sizes than a pointer-based tree; we use it as the BST
  substitute.
* **SPLUB** runs Dijkstra over the known edges, which wants cheap iteration
  over ``(neighbour, weight)`` pairs.

On top of the sorted lists the graph maintains *flat NumPy mirrors* of each
node's adjacency (:meth:`adjacency_arrays`) and of the full edge set
(:meth:`edge_arrays`), rebuilt lazily and invalidated by **mutation
epochs**: :meth:`node_epoch` advances whenever a node's adjacency changes
and :attr:`epoch` whenever the graph changes at all.  The epochs are stored
monotone counters (never derived from sizes, which can repeat once removal
exists): two equal epochs imply *identical* graphs, so an epoch comparison
is a complete staleness test — vectorised bound kernels and bound memos key
their caches on it.  For a graph that has only ever gained edges the global
epoch equals :attr:`num_edges` and each node epoch equals the node's
degree, preserving the original append-only contract.

Mutation support (:meth:`remove_node`, :meth:`grow`, :meth:`revive`)
tombstones objects without discarding resolved distances among survivors:
removal drops only the edges incident to the removed id, patches the flat
edge mirror by compacting survivors into a fresh buffer (old views stay
valid), and bumps the epochs of every touched node — never a silent full
recompute of surviving state.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from itertools import islice
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.exceptions import InvalidObjectError, UnknownDistanceError
from repro.core.oracle import canonical_pair

Edge = Tuple[int, int]

#: Per-node mirror: (node epoch at build time, neighbour ids, weights).
_NodeMirror = Tuple[int, np.ndarray, np.ndarray]
#: Whole-graph CSR mirror: (epoch at build time, indptr, indices, weights).
_CsrMirror = Tuple[int, np.ndarray, np.ndarray, np.ndarray]


class PartialDistanceGraph:
    """Known-distance store over ``n`` objects with sorted adjacency lists.

    ``registry=`` (keyword-only) runs :meth:`instrument` at construction —
    the unified convention shared by every instrumentable object.
    """

    def __init__(self, n: int, *, registry=None) -> None:
        if n <= 0:
            raise InvalidObjectError(0, n)
        self._n = n
        self._weights: Dict[Edge, float] = {}
        # _adjacency[u] is a sorted list of neighbour ids with known distance;
        # _adj_weights[u] holds the matching weights at the same positions.
        self._adjacency: List[List[int]] = [[] for _ in range(n)]
        self._adj_weights: List[List[float]] = [[] for _ in range(n)]
        # Stored monotone epochs.  For an append-only history these equal
        # num_edges / degree; removals keep bumping them so equal epochs
        # always mean identical graphs even after tombstoning.
        self._epoch = 0
        self._node_epochs: List[int] = [0] * n
        # Tombstone mask: _alive[i] is False once object i was removed.
        self._alive: List[bool] = [True] * n
        self._dead_count = 0
        # Lazily rebuilt NumPy mirrors, invalidated by epoch comparison.
        self._node_mirror: List[Optional[_NodeMirror]] = [None] * n
        # Whole-graph edge mirror: capacity-doubling (i, j, w) column buffers
        # kept current *at insert time* once first materialised — readers
        # never rebuild, they only slice the committed prefix.
        self._edge_buf: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._edge_buf_len = 0
        # Cached column views over the committed prefix, keyed on the edge
        # count, so repeat calls at one epoch return identical objects.
        self._edge_view: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        # Symmetric CSR mirror of the whole adjacency, keyed on the epoch.
        self._csr_mirror: Optional[_CsrMirror] = None
        # Edge-commit listeners: fired once per *new* edge, after insertion
        # (so callbacks observe the bumped epochs).  The service engine hooks
        # periodic snapshots here.
        self._edge_listeners: List[Callable[[int, int, float], None]] = []
        # Cheap always-on tallies for the observability layer; exposed as
        # registry metrics by instrument().
        self.node_mirror_rebuilds = 0
        self.edge_mirror_rebuilds = 0
        self.edge_mirror_appends = 0
        self.edge_mirror_compactions = 0
        self.csr_mirror_rebuilds = 0
        # Optional bound CSRStore (attach_store): rows [0, num_edges) of the
        # store correspond 1:1, in order, to this graph's edges.
        self._store = None
        if registry is not None:
            self.instrument(registry)

    # -- introspection ------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of objects (nodes) in the universe."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of known (resolved) edges."""
        return len(self._weights)

    @property
    def epoch(self) -> int:
        """Global mutation epoch: advances by one per edge insert or mutation.

        The counter is stored (never derived from sizes, which can repeat
        once removal exists), so two equal epochs imply *identical* graphs —
        caches keyed on it never go wrong.  On a graph that has only ever
        gained edges it equals :attr:`num_edges`.
        """
        return self._epoch

    def node_epoch(self, i: int) -> int:
        """Mutation epoch of node ``i``: advances when its adjacency changes.

        Anything derived only from the adjacency of ``i`` (and of a second
        node ``j``) stays exact while both epochs stand still.  On an
        append-only history the value equals the node's degree.
        """
        return self._node_epochs[i]

    def is_alive(self, i: int) -> bool:
        """True while object ``i`` has not been tombstoned."""
        self._check_index(i)
        return self._alive[i]

    @property
    def num_alive(self) -> int:
        """Number of live (non-tombstoned) objects."""
        return self._n - self._dead_count

    @property
    def num_tombstones(self) -> int:
        """Number of removed (tombstoned) object slots."""
        return self._dead_count

    def alive_ids(self) -> List[int]:
        """Sorted ids of all live objects."""
        return [i for i in range(self._n) if self._alive[i]]

    @property
    def mutated(self) -> bool:
        """True once the graph's history includes anything beyond edge inserts."""
        return self._dead_count > 0 or self._epoch != len(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, pair: Edge) -> bool:
        i, j = pair
        return canonical_pair(i, j) in self._weights

    def has_edge(self, i: int, j: int) -> bool:
        """Return True when ``dist(i, j)`` is known."""
        return canonical_pair(i, j) in self._weights

    def degree(self, i: int) -> int:
        """Number of known edges incident on object ``i``."""
        self._check_index(i)
        return len(self._adjacency[i])

    # -- edge access ----------------------------------------------------------

    def weight(self, i: int, j: int) -> float:
        """Return the known distance for ``(i, j)`` or raise ``UnknownDistanceError``."""
        if i == j:
            return 0.0
        try:
            return self._weights[canonical_pair(i, j)]
        except KeyError:
            raise UnknownDistanceError(i, j) from None

    def get(self, i: int, j: int, default: float | None = None) -> float | None:
        """Return the known distance for ``(i, j)`` or ``default``."""
        if i == j:
            return 0.0
        return self._weights.get(canonical_pair(i, j), default)

    def add_edge(self, i: int, j: int, distance: float) -> bool:
        """Record a resolved distance.

        Returns True when the edge was new, False when it merely re-recorded
        an identical known value.  Conflicting re-insertion raises ValueError
        (a metric distance cannot change).
        """
        self._check_index(i)
        self._check_index(j)
        if i == j:
            raise ValueError("self-distances are implicit and always 0")
        if not self._alive[i]:
            raise InvalidObjectError(i, self._n)
        if not self._alive[j]:
            raise InvalidObjectError(j, self._n)
        if distance < 0:
            raise ValueError(f"negative distance {distance} for edge ({i}, {j})")
        key = canonical_pair(i, j)
        existing = self._weights.get(key)
        if existing is not None:
            if existing != distance:
                raise ValueError(
                    f"edge {key} already known with distance {existing}, "
                    f"refusing to overwrite with {distance}"
                )
            return False
        distance = float(distance)
        self._weights[key] = distance
        self._insert_neighbor(key[0], key[1], distance)
        self._insert_neighbor(key[1], key[0], distance)
        self._epoch += 1
        self._node_epochs[key[0]] += 1
        self._node_epochs[key[1]] += 1
        if self._edge_buf is not None:
            self._append_edge_row(key[0], key[1], distance)
        store = self._store
        if store is not None and store.writable:
            store.append(key[0], key[1], distance)
        for listener in self._edge_listeners:
            listener(key[0], key[1], distance)
        return True

    # -- shared-memory store binding ----------------------------------------

    @property
    def store(self):
        """The bound :class:`~repro.core.csr_store.CSRStore`, or ``None``."""
        return self._store

    def attach_store(self, store) -> None:
        """Bind a :class:`~repro.core.csr_store.CSRStore` to this graph.

        After binding, store rows ``[0, num_edges)`` mirror this graph's
        edges in insertion order: a *writable* store receives every future
        :meth:`add_edge` as an append (and is backfilled with the graph's
        current edges if it is empty), while a *read-only* store is the
        source the graph replays from — new rows published by the writing
        process land here via :meth:`sync_from_store`.  Store edges absent
        from the graph are merged in first; a weight conflict raises
        ``ValueError`` and leaves no binding.
        """
        if self._store is not None:
            raise ValueError("graph already has a bound store")
        if store.n != self._n:
            raise ValueError(
                f"store covers {store.n} objects but the graph has {self._n}"
            )
        backfill = store.writable and store.num_edges == 0 and self._weights
        for i, j, w in store.iter_edges():
            existing = self._weights.get(canonical_pair(i, j))
            if existing is not None and existing != w:
                raise ValueError(
                    f"store edge ({i}, {j}) has weight {w} but the graph "
                    f"knows {existing}"
                )
        for i, j, w in store.iter_edges():
            self.add_edge(i, j, w)
        if backfill:
            for (i, j), w in self._weights.items():
                store.append(i, j, w)
        if store.num_edges != len(self._weights):
            raise ValueError(
                f"cannot bind: store holds {store.num_edges} edges but the "
                f"graph has {len(self._weights)} (read-only stores must "
                "cover every graph edge)"
            )
        self._store = store

    def sync_from_store(self) -> int:
        """Replay rows a writer published since the last sync; return the count.

        Only meaningful on a graph bound to a *read-only* store (shard
        processes attached to another process's store); a writable store is
        fed by this graph and is already current.
        """
        store = self._store
        if store is None:
            raise ValueError("no store bound to this graph")
        if store.writable:
            return 0
        store.refresh()
        added = 0
        for i, j, w in islice(store.iter_edges(), len(self._weights), None):
            if self.add_edge(i, j, w):
                added += 1
        return added

    def subscribe_edges(self, listener: Callable[[int, int, float], None]) -> None:
        """Register ``listener(i, j, distance)`` to run after every new edge.

        Listeners fire post-insertion (epochs already bumped) and only for
        genuinely new edges; they are not copied by :meth:`copy`.
        """
        self._edge_listeners.append(listener)

    def instrument(self, registry) -> None:
        """Expose this graph's tallies on a ``repro.obs`` metrics registry.

        All metrics are callback-backed (the graph itself stays the single
        writer): edge/epoch gauges plus counters for edge inserts and the
        lazy NumPy mirror rebuilds — the number the vectorized bound
        kernels amortise away.
        """
        registry.gauge(
            "repro_graph_nodes", "Objects in the universe.", fn=lambda: self._n
        )
        registry.gauge(
            "repro_graph_edges",
            "Known distances stored in the partial graph.",
            fn=lambda: len(self._weights),
        )
        registry.counter(
            "repro_graph_epoch",
            "Global mutation epoch (bumps once per edge insert or mutation).",
            fn=lambda: self._epoch,
        )
        registry.gauge(
            "repro_graph_tombstones",
            "Removed (tombstoned) object slots awaiting recycling.",
            fn=lambda: self._dead_count,
        )
        registry.counter(
            "repro_graph_edge_mirror_compactions_total",
            "Edge mirrors compacted after a node removal.",
            fn=lambda: self.edge_mirror_compactions,
        )
        registry.counter(
            "repro_graph_node_mirror_rebuilds_total",
            "Per-node NumPy adjacency mirrors rebuilt after an epoch bump.",
            fn=lambda: self.node_mirror_rebuilds,
        )
        registry.counter(
            "repro_graph_edge_mirror_rebuilds_total",
            "Whole-graph NumPy edge mirrors built from scratch (first use only).",
            fn=lambda: self.edge_mirror_rebuilds,
        )
        registry.counter(
            "repro_graph_edge_mirror_appends_total",
            "Rows appended in place to the materialised edge mirror.",
            fn=lambda: self.edge_mirror_appends,
        )
        registry.counter(
            "repro_graph_csr_rebuilds_total",
            "Symmetric CSR mirrors rebuilt after an epoch bump.",
            fn=lambda: self.csr_mirror_rebuilds,
        )

    def unsubscribe_edges(self, listener: Callable[[int, int, float], None]) -> None:
        """Remove a previously registered edge listener."""
        self._edge_listeners.remove(listener)

    def _insert_neighbor(self, u: int, v: int, distance: float) -> None:
        pos = bisect_left(self._adjacency[u], v)
        self._adjacency[u].insert(pos, v)
        self._adj_weights[u].insert(pos, distance)

    # -- mutation (tombstoning and growth) -----------------------------------

    def _check_mutable(self) -> None:
        if self._store is not None:
            raise ValueError(
                "cannot mutate a graph bound to a CSRStore (the store is "
                "append-only shared memory); call detach_store() first"
            )

    def remove_node(self, i: int) -> int:
        """Tombstone object ``i``, dropping only its incident edges.

        Every resolved distance among the survivors is preserved.  The flat
        edge mirror is compacted into a fresh buffer (previously returned
        views stay valid on the retired one); the epochs of ``i`` and of
        each former neighbour bump so every derived cache notices.  Returns
        the number of edges dropped.
        """
        self._check_index(i)
        self._check_mutable()
        if not self._alive[i]:
            raise InvalidObjectError(i, self._n)
        neighbours = list(self._adjacency[i])
        for v in neighbours:
            del self._weights[canonical_pair(i, v)]
            pos = bisect_left(self._adjacency[v], i)
            del self._adjacency[v][pos]
            del self._adj_weights[v][pos]
            self._node_epochs[v] += 1
        self._adjacency[i] = []
        self._adj_weights[i] = []
        self._node_epochs[i] += 1
        self._alive[i] = False
        self._dead_count += 1
        self._epoch += 1
        if neighbours and self._edge_buf is not None:
            # Compact survivors into fresh arrays in insertion order; the
            # committed prefix of the retired buffer is never written again.
            self._materialise_edge_buf()
            self.edge_mirror_compactions += 1
        self._edge_view = None
        return len(neighbours)

    def grow(self, count: int = 1) -> int:
        """Append ``count`` fresh live object slots; return the new ``n``."""
        if count <= 0:
            raise ValueError("grow count must be positive")
        self._check_mutable()
        self._adjacency.extend([] for _ in range(count))
        self._adj_weights.extend([] for _ in range(count))
        self._node_mirror.extend([None] * count)
        self._node_epochs.extend([0] * count)
        self._alive.extend([True] * count)
        self._n += count
        self._epoch += 1
        self._csr_mirror = None  # indptr length depends on n
        return self._n

    def revive(self, i: int) -> None:
        """Bring a tombstoned slot back to life (id recycling on insert).

        The slot comes back with an empty adjacency and a bumped epoch, so
        any cache that ever mentioned the dead incarnation notices.
        """
        self._check_index(i)
        self._check_mutable()
        if self._alive[i]:
            raise ValueError(f"object {i} is already alive")
        self._alive[i] = True
        self._dead_count -= 1
        self._node_epochs[i] += 1
        self._epoch += 1

    def detach_store(self) -> object:
        """Unbind and return the CSRStore so the graph becomes mutable.

        The store keeps whatever rows it holds (append-only history); the
        graph falls back to its local mirrors, rebuilding the flat edge
        buffer from the weights dict on next use if it was never
        materialised locally.
        """
        store = self._store
        if store is None:
            raise ValueError("no store bound to this graph")
        self._store = None
        self._edge_view = None
        self._csr_mirror = None
        return store

    def restore_mutation_state(
        self,
        alive: Iterable[bool],
        epoch: int,
        node_epochs: Iterable[int],
    ) -> None:
        """Re-apply persisted tombstone/epoch state after an edge replay.

        Used by v3 archive restore: the caller replays the surviving edges
        into a fresh graph, then installs the persisted alive mask and the
        (strictly larger-than-derived) stored epochs so fingerprint and
        staleness semantics match the mutated original exactly.
        """
        alive = list(alive)
        node_epochs = [int(e) for e in node_epochs]
        if len(alive) != self._n or len(node_epochs) != self._n:
            raise ValueError("mutation state length does not match graph size")
        if epoch < self._epoch:
            raise ValueError(
                f"stored epoch {epoch} below the replayed edge epoch {self._epoch}"
            )
        for i in range(self._n):
            if node_epochs[i] < self._node_epochs[i]:
                raise ValueError(
                    f"stored node epoch {node_epochs[i]} for object {i} below "
                    f"its replayed degree {self._node_epochs[i]}"
                )
            if not alive[i] and self._adjacency[i]:
                raise ValueError(f"tombstoned object {i} still has edges")
        self._alive = [bool(a) for a in alive]
        self._dead_count = sum(1 for a in self._alive if not a)
        self._epoch = int(epoch)
        self._node_epochs = node_epochs
        self._edge_view = None
        self._csr_mirror = None

    def _materialise_edge_buf(self) -> None:
        """(Re)build the flat edge buffer from the weights dict."""
        m = len(self._weights)
        i_ids = np.empty(m, dtype=np.int64)
        j_ids = np.empty(m, dtype=np.int64)
        weights = np.empty(m, dtype=np.float64)
        for idx, ((i, j), w) in enumerate(self._weights.items()):
            i_ids[idx] = i
            j_ids[idx] = j
            weights[idx] = w
        self._edge_buf = (i_ids, j_ids, weights)
        self._edge_buf_len = m

    # -- iteration --------------------------------------------------------------

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate over known edges as ``(i, j, weight)`` with ``i < j``."""
        for (i, j), w in self._weights.items():
            yield i, j, w

    def neighbors(self, i: int) -> Iterable[int]:
        """Sorted ids of objects whose distance to ``i`` is known."""
        self._check_index(i)
        return iter(self._adjacency[i])

    def adjacency_list(self, i: int) -> List[int]:
        """The sorted adjacency array of ``i`` (do not mutate)."""
        self._check_index(i)
        return self._adjacency[i]

    def neighbor_items(self, i: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbour, weight)`` pairs for node ``i``."""
        self._check_index(i)
        return zip(self._adjacency[i], self._adj_weights[i])

    # -- NumPy mirrors ---------------------------------------------------------

    def adjacency_arrays(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Flat NumPy mirror of node ``i``'s adjacency: ``(ids, weights)``.

        Ids are sorted and unique; ``weights[k]`` is the known distance to
        ``ids[k]``.  The arrays are rebuilt lazily when :meth:`node_epoch`
        has moved since the previous call and must not be mutated.
        """
        self._check_index(i)
        epoch = self._node_epochs[i]
        mirror = self._node_mirror[i]
        if mirror is None or mirror[0] != epoch:
            self.node_mirror_rebuilds += 1
            degree = len(self._adjacency[i])
            ids = np.fromiter(self._adjacency[i], dtype=np.int64, count=degree)
            weights = np.fromiter(self._adj_weights[i], dtype=np.float64, count=degree)
            mirror = (epoch, ids, weights)
            self._node_mirror[i] = mirror
        return mirror[1], mirror[2]

    def _append_edge_row(self, i: int, j: int, weight: float) -> None:
        """Keep the materialised edge mirror current at insert time.

        Runs under the caller's exclusive (write) discipline — the same one
        that guards ``add_edge`` itself — so readers only ever slice the
        committed prefix and never mutate shared state.  Capacity doubles
        on demand; old views stay valid because the committed prefix of a
        retired buffer is never written again.
        """
        buf = self._edge_buf
        idx = self._edge_buf_len
        if idx >= buf[0].shape[0]:
            new_cap = max(2 * buf[0].shape[0], idx + 1)
            grown = (
                np.empty(new_cap, dtype=np.int64),
                np.empty(new_cap, dtype=np.int64),
                np.empty(new_cap, dtype=np.float64),
            )
            for new, old in zip(grown, buf):
                new[:idx] = old[:idx]
            buf = grown
            self._edge_buf = buf
        buf[0][idx] = i
        buf[1][idx] = j
        buf[2][idx] = weight
        self._edge_buf_len = idx + 1
        self.edge_mirror_appends += 1

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat NumPy mirror of the whole edge set: ``(i_ids, j_ids, weights)``.

        Rows appear in resolution (insertion) order with ``i < j``.  Do not
        mutate the arrays.  The mirror is materialised on first use (one
        full rebuild, counted in :attr:`edge_mirror_rebuilds`) and then
        *extended in place by each insert* (:attr:`edge_mirror_appends`) —
        an epoch bump never triggers a redundant whole-mirror rebuild, and
        read-only workloads leave both counters untouched.

        When a store is bound and current (row count equals the graph's
        edge count) the store's columns are returned directly — zero-copy
        for a single-segment store.
        """
        m = len(self._weights)
        store = self._store
        if store is not None and store.num_edges == m:
            return store.edge_columns()
        if self._edge_buf is None:
            self.edge_mirror_rebuilds += 1
            self._materialise_edge_buf()
        buf = self._edge_buf
        view = self._edge_view
        if view is None or view[0] != self._epoch:
            view = (self._epoch, buf[0][:m], buf[1][:m], buf[2][:m])
            self._edge_view = view
        return view[1], view[2], view[3]

    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Symmetric CSR view of the known adjacency: ``(indptr, indices, weights)``.

        ``indices[indptr[u]:indptr[u + 1]]`` are the sorted known
        neighbours of ``u`` with matching ``weights`` — the layout the
        compiled kernels in :mod:`repro.bounds.kernels` consume.  Served
        straight from a bound-and-current :class:`~repro.core.csr_store.
        CSRStore` (:meth:`~repro.core.csr_store.CSRStore.csr`); otherwise a
        local mirror keyed on :attr:`epoch` is rebuilt vectorised from the
        flat edge columns.  Do not mutate the arrays.
        """
        m = len(self._weights)
        store = self._store
        if store is not None and store.num_edges == m:
            return store.csr()
        mirror = self._csr_mirror
        if mirror is None or mirror[0] != self._epoch:
            self.csr_mirror_rebuilds += 1
            i_ids, j_ids, w = self.edge_arrays()
            rows = np.concatenate([i_ids, j_ids])
            cols = np.concatenate([j_ids, i_ids])
            data = np.concatenate([w, w])
            order = np.lexsort((cols, rows))
            indices = cols[order]
            weights = data[order]
            counts = np.bincount(rows, minlength=self._n)
            indptr = np.zeros(self._n + 1, dtype=np.int64)
            np.cumsum(counts, out=indptr[1:])
            mirror = (self._epoch, indptr, indices, weights)
            self._csr_mirror = mirror
        return mirror[1], mirror[2], mirror[3]

    def common_neighbors(self, i: int, j: int) -> Iterator[int]:
        """Sorted-merge intersection of the adjacency lists of ``i`` and ``j``.

        This is the triangle-enumeration primitive of the Tri Scheme
        (Algorithm 2 of the paper).
        """
        a = self._adjacency[i]
        b = self._adjacency[j]
        # Iterate over the shorter list and bisect into the longer one when the
        # lists have very different lengths; otherwise do a linear merge.
        if len(a) > len(b):
            a, b = b, a
        if len(b) > 8 * max(len(a), 1):
            for v in a:
                pos = bisect_left(b, v)
                if pos < len(b) and b[pos] == v:
                    yield v
            return
        ia = ib = 0
        while ia < len(a) and ib < len(b):
            va, vb = a[ia], b[ib]
            if va == vb:
                yield va
                ia += 1
                ib += 1
            elif va < vb:
                ia += 1
            else:
                ib += 1

    def unknown_pairs(self) -> Iterator[Edge]:
        """Iterate every pair whose distance is still unknown (i < j).

        Walks each node's sorted adjacency alongside the candidate range so
        known pairs are skipped by a pointer advance instead of a dict probe
        per pair.
        """
        n = self._n
        for i in range(n):
            if not self._alive[i]:
                continue
            adj = self._adjacency[i]
            pos = bisect_right(adj, i)  # first neighbour above i
            nxt = adj[pos] if pos < len(adj) else n
            for j in range(i + 1, n):
                if j == nxt:
                    pos += 1
                    nxt = adj[pos] if pos < len(adj) else n
                    continue
                if not self._alive[j]:
                    continue
                yield (i, j)

    def copy(self) -> "PartialDistanceGraph":
        """Deep copy of the graph (weights, adjacency, epochs, tombstones)."""
        clone = PartialDistanceGraph(self._n)
        clone._weights = dict(self._weights)
        clone._adjacency = [list(adj) for adj in self._adjacency]
        clone._adj_weights = [list(ws) for ws in self._adj_weights]
        clone._epoch = self._epoch
        clone._node_epochs = list(self._node_epochs)
        clone._alive = list(self._alive)
        clone._dead_count = self._dead_count
        return clone

    def _check_index(self, i: int) -> None:
        if not 0 <= i < self._n:
            raise InvalidObjectError(i, self._n)
