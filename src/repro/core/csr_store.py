"""Shared-memory columnar store of resolved edges (the CSR bound store).

The PR-2 flat NumPy mirrors proved that every hot bound kernel wants the
resolved-edge set as columns, not as Python objects.  This module promotes
those columns from lazy per-process caches to a **source of truth** that
lives in :mod:`multiprocessing.shared_memory`, so N engine shards can map
the same warm edge set read-only with zero copies.

Layout
------
A store named ``S`` is one small *header* block plus a chain of fixed-
capacity *segments*:

* ``S`` — eight ``int64`` slots: magic, layout version, universe size
  ``n``, segment capacity, segment count, edge count (== the graph's
  edge-insert epoch), and two reserved slots.
* ``S.s<k>`` — segment ``k``: three contiguous arrays of ``capacity``
  entries each (``i`` ids as ``int64``, ``j`` ids as ``int64``, weights as
  ``float64``), appended in resolution order.

Segments are **append-only and epoch-tagged**: rows never move, weights
never change, and the header's edge count only grows.  A writer fills the
current segment and bumps the edge count *after* the row is fully written,
so a reader that samples the header sees only complete rows; a reader
calls :meth:`CSRStore.refresh` to observe a later epoch and attaches any
new segments by name — it never copies or re-reads old rows.

On top of the raw columns, :meth:`CSRStore.csr` materialises the classic
compressed-sparse-row view (``indptr``/``indices``/``weights`` over the
symmetric adjacency), cached per epoch — the natural input for the
vectorised bound kernels.

Exactly one process may write (the single-writer rule every
:class:`~repro.core.partial_graph.PartialDistanceGraph` commit path already
obeys); any number may attach read-only.  Stores round-trip through the v2
snapshot format (:meth:`save` / :meth:`from_archive`), which is how a
sharded service gives every shard a warm, attach-only start.
"""

from __future__ import annotations

import json
import os
import secrets
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np
from multiprocessing import resource_tracker, shared_memory

Pair = Tuple[int, int]

_MAGIC = 0x43535253  # "CSRS"
_LAYOUT_VERSION = 1
_HEADER_SLOTS = 8
_HEADER_BYTES = _HEADER_SLOTS * 8

# Header slot indices.
_H_MAGIC, _H_VERSION, _H_N, _H_CAPACITY, _H_SEGMENTS, _H_EDGES = range(6)

#: Default rows per segment (24 bytes/row -> ~192 KiB segments).
DEFAULT_SEGMENT_CAPACITY = 8192


def _unregister(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from owning an *attached* segment.

    On CPython < 3.13 ``SharedMemory(name=...)`` registers the block with
    the per-process resource tracker even when ``create=False``; when the
    attaching process exits, the tracker unlinks a segment the owner is
    still serving.  Attach-side blocks therefore unregister immediately —
    only the creating process may destroy shared state.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # pragma: no cover - tracker API moved
        pass


class _Segment:
    """One attached shared-memory segment, exposed as three column views."""

    __slots__ = ("shm", "i", "j", "w")

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int) -> None:
        self.shm = shm
        span = capacity * 8
        buf = shm.buf
        self.i = np.ndarray((capacity,), dtype=np.int64, buffer=buf[0:span])
        self.j = np.ndarray((capacity,), dtype=np.int64, buffer=buf[span : 2 * span])
        self.w = np.ndarray(
            (capacity,), dtype=np.float64, buffer=buf[2 * span : 3 * span]
        )

    def close(self) -> None:
        # Views must be dropped before the mapping may close.
        self.i = self.j = self.w = None  # type: ignore[assignment]
        self.shm.close()


class CSRStore:
    """Append-only shared-memory edge columns with an epoch-tagged header.

    Build with :meth:`create` (owner/writer), :meth:`attach` (read-only
    peer), :meth:`from_graph`, or :meth:`from_archive`.  The owner must
    eventually call :meth:`unlink`; every attacher just :meth:`close`\\ s.
    """

    def __init__(
        self,
        header: shared_memory.SharedMemory,
        segments: List[_Segment],
        *,
        name: str,
        owner: bool,
        writable: bool,
    ) -> None:
        self._header_shm = header
        self._header = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=header.buf)
        self._segments = segments
        self.name = name
        self.owner = owner
        self.writable = writable
        self._closed = False
        #: Metadata carried over from :meth:`from_archive` (not stored in
        #: shared memory — shared state is numeric columns only).
        self.metadata: Dict[str, Any] = {}
        self._num_edges = int(self._header[_H_EDGES])
        self._columns_cache: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None
        self._csr_cache: Optional[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def create(
        cls,
        n: int,
        *,
        name: Optional[str] = None,
        segment_capacity: int = DEFAULT_SEGMENT_CAPACITY,
    ) -> "CSRStore":
        """Create an empty writable store for a universe of ``n`` objects."""
        if n <= 0:
            raise ValueError("a store needs a positive universe size")
        if segment_capacity < 1:
            raise ValueError("segment_capacity must be positive")
        if name is None:
            name = f"repro-csr-{os.getpid()}-{secrets.token_hex(4)}"
        header = shared_memory.SharedMemory(name=name, create=True, size=_HEADER_BYTES)
        hdr = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=header.buf)
        hdr[:] = 0
        hdr[_H_MAGIC] = _MAGIC
        hdr[_H_VERSION] = _LAYOUT_VERSION
        hdr[_H_N] = n
        hdr[_H_CAPACITY] = segment_capacity
        return cls(header, [], name=name, owner=True, writable=True)

    @classmethod
    def attach(cls, name: str) -> "CSRStore":
        """Attach to an existing store read-only (zero-copy)."""
        header = shared_memory.SharedMemory(name=name)
        _unregister(header)
        hdr = np.ndarray((_HEADER_SLOTS,), dtype=np.int64, buffer=header.buf)
        if int(hdr[_H_MAGIC]) != _MAGIC:
            header.close()
            raise ValueError(f"shared memory block {name!r} is not a CSR store")
        if int(hdr[_H_VERSION]) != _LAYOUT_VERSION:
            version = int(hdr[_H_VERSION])
            header.close()
            raise ValueError(
                f"CSR store {name!r} uses layout version {version}; "
                f"this build reads version {_LAYOUT_VERSION}"
            )
        store = cls(header, [], name=name, owner=False, writable=False)
        store.refresh()
        return store

    @classmethod
    def from_graph(
        cls,
        graph,
        *,
        name: Optional[str] = None,
        segment_capacity: Optional[int] = None,
    ) -> "CSRStore":
        """Copy a graph's resolved edges into a fresh store (insertion order)."""
        i, j, w = graph.edge_arrays()
        capacity = segment_capacity or max(len(i), DEFAULT_SEGMENT_CAPACITY)
        store = cls.create(graph.n, name=name, segment_capacity=capacity)
        store.extend_columns(i, j, w)
        return store

    @classmethod
    def from_archive(
        cls,
        path,
        *,
        name: Optional[str] = None,
        segment_capacity: Optional[int] = None,
        expected_fingerprint: Optional[str] = None,
    ) -> "CSRStore":
        """Build a store from a v1/v2 snapshot archive.

        The archive's integrity checks run exactly as in
        :func:`repro.core.persistence.load_archive` (epoch and per-node
        epoch counters must rebuild from the edge columns), and
        ``expected_fingerprint`` is verified against the stored metadata
        when given.  The loaded columns land in one right-sized segment, so
        a subsequent :meth:`attach` serves them zero-copy.
        """
        from repro.core.exceptions import SnapshotMismatchError
        from repro.core.persistence import load_columns

        cols = load_columns(path)
        if expected_fingerprint is not None:
            theirs = cols.metadata.get("fingerprint")
            if theirs != expected_fingerprint:
                raise SnapshotMismatchError(expected_fingerprint, str(theirs))
        capacity = segment_capacity or max(len(cols.i), DEFAULT_SEGMENT_CAPACITY)
        store = cls.create(cols.n, name=name, segment_capacity=capacity)
        store.extend_columns(cols.i, cols.j, cols.w)
        store.metadata = dict(cols.metadata)
        return store

    # -- introspection -------------------------------------------------------

    @property
    def n(self) -> int:
        """Universe size the edge ids index into."""
        return int(self._header[_H_N])

    @property
    def segment_capacity(self) -> int:
        """Rows per segment."""
        return int(self._header[_H_CAPACITY])

    @property
    def num_edges(self) -> int:
        """Edges visible to *this* handle (call :meth:`refresh` to advance)."""
        return self._num_edges

    @property
    def epoch(self) -> int:
        """Edge-insert epoch of the visible prefix (== :attr:`num_edges`)."""
        return self._num_edges

    @property
    def num_segments(self) -> int:
        """Segments attached by this handle."""
        return len(self._segments)

    def __len__(self) -> int:
        return self._num_edges

    # -- reading -------------------------------------------------------------

    def refresh(self) -> int:
        """Observe the writer's latest epoch; attach any new segments.

        Returns the new visible edge count.  Cheap when nothing changed:
        two header reads and no copies ever.
        """
        self._check_open()
        live_segments = int(self._header[_H_SEGMENTS])
        capacity = self.segment_capacity
        while len(self._segments) < live_segments:
            k = len(self._segments)
            shm = shared_memory.SharedMemory(name=f"{self.name}.s{k}")
            if not self.owner:
                _unregister(shm)
            self._segments.append(_Segment(shm, capacity))
        self._num_edges = int(self._header[_H_EDGES])
        return self._num_edges

    def iter_segments(self) -> Iterator[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Zero-copy per-segment column views covering the visible prefix."""
        self._check_open()
        remaining = self._num_edges
        capacity = self.segment_capacity
        for seg in self._segments:
            if remaining <= 0:
                return
            rows = min(remaining, capacity)
            yield seg.i[:rows], seg.j[:rows], seg.w[:rows]
            remaining -= rows

    def iter_edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate visible edges as ``(i, j, weight)`` in insertion order."""
        for ids_i, ids_j, weights in self.iter_segments():
            for a, b, w in zip(ids_i, ids_j, weights):
                yield int(a), int(b), float(w)

    def edge_columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The visible prefix as three flat arrays ``(i, j, w)``.

        Zero-copy (direct shared-memory views) while the store holds a
        single segment — the invariant for archive-loaded stores; the
        concatenation across multiple segments is cached per epoch.
        """
        self._check_open()
        m = self._num_edges
        if m <= self.segment_capacity:
            if not self._segments:
                empty_i = np.empty(0, dtype=np.int64)
                return empty_i, empty_i.copy(), np.empty(0, dtype=np.float64)
            seg = self._segments[0]
            return seg.i[:m], seg.j[:m], seg.w[:m]
        cache = self._columns_cache
        if cache is None or cache[0] != m:
            parts = list(self.iter_segments())
            cache = (
                m,
                np.concatenate([p[0] for p in parts]),
                np.concatenate([p[1] for p in parts]),
                np.concatenate([p[2] for p in parts]),
            )
            self._columns_cache = cache
        return cache[1], cache[2], cache[3]

    def csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compressed-sparse-row view of the symmetric known-edge adjacency.

        Returns ``(indptr, indices, weights)`` with ``indices[indptr[u]:
        indptr[u+1]]`` the sorted known neighbours of ``u`` — the layout
        the vectorised bound kernels consume.  Rebuilt only when the epoch
        moved; derived locally (the shared segments stay untouched).
        """
        self._check_open()
        m = self._num_edges
        cache = self._csr_cache
        if cache is not None and cache[0] == m:
            return cache[1], cache[2], cache[3]
        i, j, w = self.edge_columns()
        n = self.n
        rows = np.concatenate([i, j])
        cols = np.concatenate([j, i])
        data = np.concatenate([w, w])
        order = np.lexsort((cols, rows))
        rows = rows[order]
        indices = cols[order]
        weights = data[order]
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._csr_cache = (m, indptr, indices, weights)
        return indptr, indices, weights

    def degrees(self) -> np.ndarray:
        """Known-edge degree of every object over the visible prefix."""
        i, j, _ = self.edge_columns()
        n = self.n
        return np.bincount(i, minlength=n) + np.bincount(j, minlength=n)

    # -- writing -------------------------------------------------------------

    def append(self, i: int, j: int, w: float) -> int:
        """Append one resolved edge (canonical order); returns the edge count.

        Single-writer only.  The header's edge count is bumped *after* the
        row lands, so concurrent readers never observe a torn row.
        """
        self._check_open()
        if not self.writable:
            raise PermissionError(
                f"CSR store {self.name!r} was attached read-only; "
                "only the creating process may append"
            )
        if j < i:
            i, j = j, i
        capacity = self.segment_capacity
        idx = self._num_edges
        seg_idx, offset = divmod(idx, capacity)
        if seg_idx == len(self._segments):
            self._add_segment(seg_idx)
        seg = self._segments[seg_idx]
        seg.i[offset] = i
        seg.j[offset] = j
        seg.w[offset] = w
        self._num_edges = idx + 1
        self._header[_H_EDGES] = self._num_edges
        return self._num_edges

    def extend_columns(self, i, j, w) -> int:
        """Bulk-append equal-length id/weight columns; returns the edge count."""
        for a, b, weight in zip(i, j, w):
            self.append(int(a), int(b), float(weight))
        return self._num_edges

    def _add_segment(self, k: int) -> None:
        capacity = self.segment_capacity
        shm = shared_memory.SharedMemory(
            name=f"{self.name}.s{k}", create=True, size=capacity * 24
        )
        self._segments.append(_Segment(shm, capacity))
        # Publish the segment before any row in it becomes visible.
        self._header[_H_SEGMENTS] = len(self._segments)

    # -- persistence ---------------------------------------------------------

    def save(self, path, metadata: Optional[Dict[str, Any]] = None) -> None:
        """Write the visible prefix as a v2 snapshot archive.

        The emitted file is byte-compatible with
        :func:`repro.core.persistence.save_graph` — epochs and per-node
        epoch counters included — so engines, :meth:`from_archive`, and
        ``Engine.restore`` all read it interchangeably.
        """
        from repro.core.persistence import save_columns

        i, j, w = self.edge_columns()
        save_columns(path, self.n, i, j, w, metadata=metadata)

    def to_graph(self):
        """Replay the visible prefix into a fresh, store-bound graph.

        The returned graph's :meth:`~repro.core.partial_graph.
        PartialDistanceGraph.edge_arrays` serves these shared columns
        directly (zero-copy) until the graph grows past the store.
        """
        from repro.core.partial_graph import PartialDistanceGraph

        graph = PartialDistanceGraph(self.n)
        graph.attach_store(self)
        return graph

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drop this handle's mappings (shared state stays for peers)."""
        if self._closed:
            return
        self._closed = True
        self._columns_cache = None
        self._csr_cache = None
        for seg in self._segments:
            seg.close()
        self._segments = []
        self._header = None  # type: ignore[assignment]
        self._header_shm.close()

    def unlink(self) -> None:
        """Destroy the shared blocks (owner only; implies :meth:`close`)."""
        if not self.owner:
            raise PermissionError(
                f"only the creating process may unlink CSR store {self.name!r}"
            )
        names = [f"{self.name}.s{k}" for k in range(len(self._segments))]
        self.close()
        for seg_name in names:
            try:
                shm = shared_memory.SharedMemory(name=seg_name)
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        try:
            shm = shared_memory.SharedMemory(name=self.name)
            shm.close()
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"CSR store {self.name!r} handle is closed")

    def __enter__(self) -> "CSRStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self.owner:
            self.unlink()
        else:
            self.close()

    def __reduce__(self):
        raise TypeError(
            "CSRStore handles do not pickle; pass store.name and "
            "CSRStore.attach() in the peer process instead"
        )

    def describe(self) -> Dict[str, Any]:
        """A JSON-friendly summary (used by stats surfaces)."""
        return {
            "name": self.name,
            "n": self.n,
            "edges": self.num_edges,
            "segments": self.num_segments,
            "segment_capacity": self.segment_capacity,
            "writable": self.writable,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRStore({json.dumps(self.describe())})"
