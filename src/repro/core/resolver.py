"""The unified re-authoring framework (the paper's Contribution 1 & 2 glue).

Proximity algorithms never talk to the oracle directly.  They hold a
:class:`SmartResolver` and phrase every distance-dependent ``IF`` through it:

* ``resolver.is_at_least(i, j, t)`` — "is ``dist(i, j) >= t``?"
* ``resolver.less(a, b)``           — "is ``dist(*a) < dist(*b)``?"
* ``resolver.argmin(u, candidates)`` — bounded nearest-candidate search.

Each predicate first consults the configured :class:`BoundProvider`; only
when the bounds are inconclusive does it resolve the distance(s) through the
oracle — exactly the paper's reformulated ``IF`` statement

    if LBdist(o_i, o_j) >= UBdist(o_k, o_l): ...

with a fallback that keeps the host algorithm's output bit-identical to its
vanilla version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.bounds import BoundProvider, Bounds, TrivialBounder
from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph

Pair = Tuple[int, int]


@dataclass
class ResolverStats:
    """Counters describing how comparisons were decided."""

    decided_by_bounds: int = 0
    decided_by_oracle: int = 0
    bound_queries: int = 0
    resolutions: int = 0

    @property
    def total_comparisons(self) -> int:
        return self.decided_by_bounds + self.decided_by_oracle

    @property
    def prune_rate(self) -> float:
        """Fraction of comparisons settled without any oracle call."""
        total = self.total_comparisons
        if total == 0:
            return 0.0
        return self.decided_by_bounds / total


class SmartResolver:
    """Bound-aware, exactness-preserving distance comparison engine.

    Parameters
    ----------
    oracle:
        The expensive distance oracle.
    bounder:
        A bound provider sharing ``graph``.  Defaults to
        :class:`TrivialBounder` (no pruning — the vanilla algorithm).
    graph:
        The partial distance graph.  When omitted a fresh one is created; when
        a ``bounder`` is supplied its graph is reused so both views agree.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        bounder: Optional[BoundProvider] = None,
        graph: Optional[PartialDistanceGraph] = None,
    ) -> None:
        if graph is None:
            graph = getattr(bounder, "graph", None)
            if graph is None:
                graph = PartialDistanceGraph(oracle.n)
        bounder_graph = getattr(bounder, "graph", None)
        if bounder_graph is not None and bounder_graph is not graph:
            raise ValueError("bounder and resolver must share the same PartialDistanceGraph")
        self.oracle = oracle
        self.graph = graph
        self.bounder: BoundProvider = bounder or TrivialBounder(graph)
        self.stats = ResolverStats()

    # -- raw access ---------------------------------------------------------

    def known(self, i: int, j: int) -> Optional[float]:
        """The resolved distance for ``(i, j)``, or None (never calls the oracle)."""
        return self.graph.get(i, j)

    def distance(self, i: int, j: int) -> float:
        """The exact distance, resolving through the oracle when unknown."""
        if i == j:
            return 0.0
        cached = self.graph.get(i, j)
        if cached is not None:
            return cached
        value = self.oracle(i, j)
        self.stats.resolutions += 1
        if self.graph.add_edge(i, j, value):
            self.bounder.notify_resolved(i, j, value)
        return value

    def bounds(self, i: int, j: int) -> Bounds:
        """Current bounds on ``dist(i, j)`` (free — no oracle calls)."""
        self.stats.bound_queries += 1
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        return self.bounder.bounds(i, j)

    # -- re-authored predicates ----------------------------------------------

    def is_at_least(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) >= threshold``.

        Decides from bounds when possible (``LB >= t`` or ``UB < t``); falls
        back to one oracle resolution otherwise.
        """
        b = self.bounds(i, j)
        if b.lower >= threshold:
            self.stats.decided_by_bounds += 1
            return True
        if b.upper < threshold:
            self.stats.decided_by_bounds += 1
            return False
        self.stats.decided_by_oracle += 1
        return self.distance(i, j) >= threshold

    def is_greater(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) > threshold``."""
        b = self.bounds(i, j)
        if b.lower > threshold:
            self.stats.decided_by_bounds += 1
            return True
        if b.upper <= threshold:
            self.stats.decided_by_bounds += 1
            return False
        self.stats.decided_by_oracle += 1
        return self.distance(i, j) > threshold

    def is_less_than(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) < threshold``."""
        return not self.is_at_least(i, j, threshold)

    def less(self, a: Pair, b: Pair) -> bool:
        """Exact answer to ``dist(*a) < dist(*b)``.

        Uses the paper's §3 reformulation ``UB(a) < LB(b) ⇒ true`` /
        ``LB(a) >= UB(b) ⇒ false`` before resorting to resolution.  When the
        provider exposes a ``decide_less`` hook (the Direct Feasibility
        Test), the joint-feasibility decision runs before any oracle call.
        """
        ba = self.bounds(*a)
        bb = self.bounds(*b)
        if ba.upper < bb.lower:
            self.stats.decided_by_bounds += 1
            return True
        if ba.lower >= bb.upper:
            self.stats.decided_by_bounds += 1
            return False
        decider = getattr(self.bounder, "decide_less", None)
        if decider is not None:
            verdict = decider(a, b)
            if verdict is not None:
                self.stats.decided_by_bounds += 1
                return verdict
        self.stats.decided_by_oracle += 1
        # Resolve the pair with the wider interval first: its value may settle
        # the comparison against the other pair's bounds with a single call.
        first, second = (a, b) if ba.gap >= bb.gap else (b, a)
        d_first = self.distance(*first)
        b_second = self.bounds(*second)
        if first == a:
            if d_first < b_second.lower:
                return True
            if d_first >= b_second.upper:
                return False
            return d_first < self.distance(*b)
        if b_second.upper < d_first:
            return True
        if b_second.lower >= d_first:
            return False
        return self.distance(*a) < d_first

    def compare(self, a: Pair, b: Pair) -> int:
        """Exact three-way comparison: sign of ``dist(*a) − dist(*b)``."""
        ba = self.bounds(*a)
        bb = self.bounds(*b)
        if ba.upper < bb.lower:
            self.stats.decided_by_bounds += 1
            return -1
        if ba.lower > bb.upper:
            self.stats.decided_by_bounds += 1
            return 1
        if ba.is_exact and bb.is_exact:
            self.stats.decided_by_bounds += 1
            da, db = ba.lower, bb.lower
        else:
            decider = getattr(self.bounder, "decide_less", None)
            if decider is not None:
                if decider(a, b):
                    self.stats.decided_by_bounds += 1
                    return -1
                if decider(b, a):
                    self.stats.decided_by_bounds += 1
                    return 1
            self.stats.decided_by_oracle += 1
            da = self.distance(*a)
            db = self.distance(*b)
        if da < db:
            return -1
        if da > db:
            return 1
        return 0

    # -- bounded searches ------------------------------------------------------

    def argmin(
        self,
        u: int,
        candidates: Sequence[int],
        upper_limit: float = math.inf,
    ) -> Tuple[Optional[int], float]:
        """Exact nearest candidate to ``u`` with lower-bound pruning.

        Returns ``(index, distance)`` of the candidate minimising
        ``dist(u, c)`` with earliest-index tie-breaking (matching a vanilla
        linear scan), or ``(None, inf)`` when every candidate's distance is
        provably ``>= upper_limit``.  Candidates whose lower bound already
        meets the current best are skipped without oracle calls.
        """
        best_idx: Optional[int] = None
        best_dist = upper_limit
        # Probe candidates in ascending lower-bound order so tight candidates
        # shrink the pruning threshold early.
        order = sorted(
            range(len(candidates)),
            key=lambda pos: self.bounds(u, candidates[pos]).lower,
        )
        for pos in order:
            c = candidates[pos]
            b = self.bounds(u, c)
            if b.lower > best_dist:
                self.stats.decided_by_bounds += 1
                continue
            if b.lower == best_dist and best_idx is not None and best_idx <= pos:
                # Cannot strictly improve, and cannot win the tie either.
                self.stats.decided_by_bounds += 1
                continue
            self.stats.decided_by_oracle += 1
            d = self.distance(u, c)
            if d < best_dist or (d == best_dist and (best_idx is None or pos < best_idx)):
                best_dist = d
                best_idx = pos
        if best_idx is None:
            return None, math.inf
        return candidates[best_idx], best_dist

    def knearest(
        self,
        u: int,
        candidates: Iterable[int],
        k: int,
    ) -> list[Tuple[float, int]]:
        """Exact ``k`` nearest candidates to ``u`` with threshold pruning.

        Returns ``[(distance, candidate), ...]`` sorted ascending (ties by
        candidate id), identical to a vanilla full scan.  A candidate is
        resolved only when its lower bound beats the current ``k``-th best.
        """
        if k <= 0:
            return []
        pool = [c for c in candidates if c != u]
        # Ascending lower bound order maximises early threshold shrinkage.
        pool.sort(key=lambda c: self.bounds(u, c).lower)
        heap: list[Tuple[float, int]] = []
        kth = math.inf
        for c in pool:
            b = self.bounds(u, c)
            if len(heap) >= k and b.lower > kth:
                self.stats.decided_by_bounds += 1
                continue
            self.stats.decided_by_oracle += 1
            d = self.distance(u, c)
            heap.append((d, c))
            if len(heap) >= k:
                heap.sort()
                del heap[k:]
                kth = heap[-1][0]
        heap.sort()
        return heap[:k]
