"""The unified re-authoring framework (the paper's Contribution 1 & 2 glue).

Proximity algorithms never talk to the oracle directly.  They hold a
:class:`SmartResolver` and phrase every distance-dependent ``IF`` through it:

* ``resolver.is_at_least(i, j, t)`` — "is ``dist(i, j) >= t``?"
* ``resolver.less(a, b)``           — "is ``dist(*a) < dist(*b)``?"
* ``resolver.argmin(u, candidates)`` — bounded nearest-candidate search.

Each predicate first consults the configured :class:`BoundProvider`; only
when the bounds are inconclusive does it resolve the distance(s) through the
oracle — exactly the paper's reformulated ``IF`` statement

    if LBdist(o_i, o_j) >= UBdist(o_k, o_l): ...

with a fallback that keeps the host algorithm's output bit-identical to its
vanilla version.

Bound queries run through a **per-pair memo keyed on endpoint edge-insert
epochs** (:meth:`PartialDistanceGraph.node_epoch`):

* equal epochs ⇒ the graph around both endpoints is unchanged, so the
  cached interval is *exactly* what the provider would recompute — serve it;
* moved epochs ⇒ the cached interval is stale but still **valid** (resolving
  edges only adds constraints, so true bounds only tighten; the cached
  interval still contains the distance).  Predicates therefore try the
  stale interval first — a conclusive verdict from a looser interval is
  necessarily the verdict the fresh interval would give — and recompute
  only when the stale interval is inconclusive.

Both moves are invisible in outputs: every decision and every resolution
happens exactly as it would without the memo; only CPU time moves.
Frontier-shaped queries (``argmin``/``knearest`` candidate scans,
``prefetch_thresholds``) are additionally routed through the provider's
:meth:`~repro.core.bounds.BaseBoundProvider.bounds_many` batch API so
vectorised schemes (Tri, LAESA) answer them with array kernels.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.bounds import BoundProvider, Bounds, TrivialBounder
from repro.core.oracle import ComparisonOracle, DistanceOracle, canonical_pair
from repro.core.partial_graph import PartialDistanceGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.batch_oracle import BatchOracle

Pair = Tuple[int, int]

#: Memo entry: (interval, epoch of low endpoint, epoch of high endpoint).
_MemoEntry = Tuple[Bounds, int, int]


@dataclass
class ResolverStats:
    """Counters describing how predicates were decided and distances obtained.

    Comparisons and resolutions are counted *separately*: one predicate that
    falls back to the oracle increments ``decided_by_oracle`` exactly once,
    even when settling it takes two resolutions (``less`` on two unknown
    pairs).  Each resolution is then classified by what it cost — a charged
    oracle call (``oracle_resolutions``), a free oracle-cache hit
    (``cached_resolutions``) — and additionally tallied in
    ``batched_resolutions`` when it went through ``resolve_many``.

    The bound-engine counters attribute CPU rather than oracle calls:
    ``bound_time_s`` is the wall time spent inside provider bound kernels,
    ``bound_cache_hits`` the queries answered from the epoch memo without
    recomputation (including stale-but-conclusive reuses),
    ``vectorized_batches`` the multi-pair dispatches that hit a provider's
    array kernel, and ``dijkstra_runs`` the shortest-path trees SPLUB-style
    providers actually computed (synced by :meth:`SmartResolver.collect_stats`).

    The tier counters split resolution cost by oracle tier:
    ``strong_calls`` mirrors ``oracle_resolutions`` (every charged exact
    call is a strong call — in a single-oracle run the two are equal by
    construction), while ``weak_calls`` and ``weak_band`` are synced from a
    :class:`~repro.core.tiering.WeakBoundProvider` when one is active —
    charged estimate calls and bound queries the error band tightened.
    """

    decided_by_bounds: int = 0
    decided_by_oracle: int = 0
    bound_queries: int = 0
    resolutions: int = 0
    oracle_resolutions: int = 0
    cached_resolutions: int = 0
    batched_resolutions: int = 0
    bound_time_s: float = 0.0
    bound_cache_hits: int = 0
    vectorized_batches: int = 0
    dijkstra_runs: int = 0
    weak_calls: int = 0
    strong_calls: int = 0
    weak_band: int = 0
    #: Distances answered as bounded-stretch estimates (``stretch > 1``)
    #: without resolving through the oracle.  Always 0 in exact mode.
    approx_answers: int = 0

    @property
    def total_comparisons(self) -> int:
        return self.decided_by_bounds + self.decided_by_oracle

    @property
    def prune_rate(self) -> float:
        """Fraction of comparisons settled without any oracle call."""
        total = self.total_comparisons
        if total == 0:
            return 0.0
        return self.decided_by_bounds / total

    def merge(self, other: "ResolverStats") -> "ResolverStats":
        """Sum of two runs' counters (all fields are additive)."""
        return ResolverStats(
            **{f.name: getattr(self, f.name) + getattr(other, f.name) for f in fields(self)}
        )


class SmartResolver:
    """Bound-aware, exactness-preserving distance comparison engine.

    Parameters
    ----------
    oracle:
        The expensive distance oracle.
    bounder:
        A bound provider sharing ``graph``.  Defaults to
        :class:`TrivialBounder` (no pruning — the vanilla algorithm).
    graph:
        The partial distance graph.  When omitted a fresh one is created; when
        a ``bounder`` is supplied its graph is reused so both views agree.
    batcher:
        Optional :class:`repro.exec.BatchOracle` wrapping the same oracle.
        When present, ``resolve_many`` (and the batched ``knearest`` /
        ``argmin`` paths) dispatch whole frontiers through it instead of
        resolving pair by pair; outputs stay identical to the serial path.
    bound_cache:
        Keep the epoch-keyed per-pair bound memo (default).  ``False``
        recomputes every bound query from scratch — decisions, resolutions,
        and outputs are identical either way; only CPU time moves.
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`.  The hot
        path keeps mutating :attr:`stats` exactly as before (resolved-edge
        sequences are byte-identical with or without a registry); deltas
        are folded into the registry at :meth:`collect_stats`, and bound
        interval widths are observed into a ``repro_bound_gap`` histogram.
    stretch:
        Approximation budget (default ``1.0`` — exact).  With ``stretch >
        1``, a distance request whose current bound interval satisfies
        ``ub <= stretch · lb`` is answered with ``ub`` — guaranteed within
        a factor ``stretch`` of the true distance — *without* an oracle
        call or a graph commit.  At the default every code path is
        byte-identical to the pre-stretch resolver (the gate never runs).
        Each accepted estimate is tallied in ``stats.approx_answers`` and
        its realised ratio observed into the ``repro_answer_stretch``
        histogram (when instrumented); by construction the ratio never
        exceeds the budget.
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        bounder: Optional[BoundProvider] = None,
        graph: Optional[PartialDistanceGraph] = None,
        batcher: Optional["BatchOracle"] = None,
        bound_cache: bool = True,
        registry: Optional[Any] = None,
        stretch: float = 1.0,
    ) -> None:
        if graph is None:
            graph = getattr(bounder, "graph", None)
            if graph is None:
                graph = PartialDistanceGraph(oracle.n)
        bounder_graph = getattr(bounder, "graph", None)
        if bounder_graph is not None and bounder_graph is not graph:
            raise ValueError("bounder and resolver must share the same PartialDistanceGraph")
        if batcher is not None and batcher.oracle is not oracle:
            raise ValueError("batcher must wrap the same DistanceOracle as the resolver")
        if stretch < 1.0:
            raise ValueError("stretch budget must be >= 1.0 (1.0 = exact)")
        self.oracle = oracle
        self.graph = graph
        self._bounder: BoundProvider = bounder or TrivialBounder(graph)
        self.batcher = batcher
        self.bound_cache = bound_cache
        self._bound_memo: Dict[Pair, _MemoEntry] = {}
        self.stats = ResolverStats()
        self.registry = None
        self._published_stats: Optional[ResolverStats] = None
        self._gap_hist = None
        self.stretch = float(stretch)
        #: Accepted bounded-stretch estimates, keyed on the canonical pair —
        #: repeat reads of one pair see one consistent value.
        self._approx_cache: Dict[Pair, float] = {}
        #: Largest realised ratio (estimate / lower bound) accepted so far.
        self.max_realized_stretch = 0.0
        self._stretch_hist = None
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry: Any) -> None:
        """Attach a metrics registry (the unified ``instrument`` convention).

        Equivalent to passing ``registry=`` at construction: declares the
        ``repro_bound_gap`` histogram and pre-declares every resolver
        counter family so zero-activity metrics still appear in snapshots
        (absent != zero to a scraper).  Stats deltas flow into the registry
        at each :meth:`collect_stats`.
        """
        # Imported lazily so repro.core stays importable on its own.
        from repro.obs.bridge import RESOLVER_METRICS
        from repro.obs.registry import ANSWER_STRETCH_BUCKETS, BOUND_GAP_BUCKETS

        self.registry = registry
        self._gap_hist = registry.histogram(
            "repro_bound_gap",
            BOUND_GAP_BUCKETS,
            help_text="Width (ub - lb) of provider bound intervals when computed.",
        )
        self._stretch_hist = registry.histogram(
            "repro_answer_stretch",
            ANSWER_STRETCH_BUCKETS,
            help_text=(
                "Realised stretch (estimate / lower bound) of approximate "
                "answers; bounded by the job's stretch budget."
            ),
        )
        for _field, metric, labels, help_text in RESOLVER_METRICS:
            family = registry.counter(metric, help_text, labelnames=tuple(labels))
            if labels:
                family.labels(**labels)

    @property
    def bounder(self) -> BoundProvider:
        """The active bound provider."""
        return self._bounder

    @bounder.setter
    def bounder(self, provider: BoundProvider) -> None:
        # A different provider computes different (not merely looser)
        # intervals, so the memo must not survive the swap.
        self._bounder = provider
        self._bound_memo.clear()

    def invalidate_bound_cache(self) -> None:
        """Drop every memoised interval.

        Call this after reconfiguring the active provider in place (e.g.
        ``Laesa.adopt`` on a provider that has already answered queries) —
        epoch keys only track *graph* growth, not provider surgery.
        """
        self._bound_memo.clear()

    def forget_objects(self, ids) -> int:
        """Purge memoised intervals and approximations touching ``ids``.

        Required when object ids are removed or recycled: the stale-but-
        conclusive reuse path may otherwise serve a dead incarnation's
        interval for a brand-new object.  Returns the number of entries
        dropped.
        """
        ids = set(ids)
        dropped = 0
        for cache in (self._bound_memo, self._approx_cache):
            stale = [key for key in cache if key[0] in ids or key[1] in ids]
            for key in stale:
                del cache[key]
            dropped += len(stale)
        return dropped

    @property
    def batched(self) -> bool:
        """True when frontiers are dispatched through a batch executor."""
        return self.batcher is not None

    # -- raw access ---------------------------------------------------------

    def known(self, i: int, j: int) -> Optional[float]:
        """The resolved distance for ``(i, j)``, or None (never calls the oracle)."""
        return self.graph.get(i, j)

    def _approx_estimate(self, i: int, j: int) -> Optional[float]:
        """Bounded-stretch answer for an unknown pair, or None to go exact.

        Accepts the pair's current upper bound as the answer when the
        interval certifies ``ub <= stretch · lb`` — the acceptance test is
        on the *ratio*, so the realised stretch observed into the histogram
        can never exceed the budget.  Accepted estimates are cached on the
        canonical pair (one histogram observation, one stable value per
        pair) and **never** committed to the graph: the partial distance
        graph stays a store of exact distances only.
        """
        key = canonical_pair(i, j)
        hit = self._approx_cache.get(key)
        if hit is not None:
            return hit
        b = self.bounds(i, j)
        lb, ub = b.lower, b.upper
        if not math.isfinite(ub):
            return None
        if ub == lb:
            ratio = 1.0
        elif lb > 0.0:
            ratio = ub / lb
        else:
            return None
        if ratio > self.stretch:
            return None
        self._approx_cache[key] = ub
        self.stats.approx_answers += 1
        if ratio > self.max_realized_stretch:
            self.max_realized_stretch = ratio
        if self._stretch_hist is not None:
            self._stretch_hist.observe(ratio)
        return ub

    def distance(self, i: int, j: int) -> float:
        """The exact distance, resolving through the oracle when unknown.

        With a ``stretch`` budget above 1, an unknown pair whose bound
        interval already certifies the budget is answered with its upper
        bound instead (see :meth:`_approx_estimate`); at the default budget
        this path never runs.
        """
        if i == j:
            return 0.0
        cached = self.graph.get(i, j)
        if cached is not None:
            return cached
        if self.stretch > 1.0:
            estimate = self._approx_estimate(i, j)
            if estimate is not None:
                return estimate
        before = self.oracle.calls
        value = self.oracle(i, j)
        self.stats.resolutions += 1
        if self.oracle.calls > before:
            self.stats.oracle_resolutions += 1
            self.stats.strong_calls += 1
        else:
            self.stats.cached_resolutions += 1
        if self.graph.add_edge(i, j, value):
            self._bound_memo.pop(canonical_pair(i, j), None)
            self._bounder.notify_resolved(i, j, value)
        return value

    def resolve_many(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        """Resolve a set of pairs at once, returning ``{canonical_pair: d}``.

        With a batcher configured, the genuinely unknown pairs go out as one
        executor batch and come back committed in canonical-pair sorted
        order (graph insert + bounder notification on the calling thread,
        exactly as if resolved serially in that order).  Without one, this
        degrades to per-pair :meth:`distance` calls over the same sorted
        sequence — the two paths produce identical state.
        """
        keys = sorted({canonical_pair(i, j) for i, j in pairs if i != j})
        unknown = [key for key in keys if self.graph.get(*key) is None]
        if unknown and self.stretch > 1.0:
            # Same gate as ``distance``: pairs whose interval certifies the
            # budget are answered approximately and drop out of the batch.
            unknown = [key for key in unknown if self._approx_estimate(*key) is None]
        if unknown:
            if self.batcher is None:
                for key in unknown:
                    self.distance(*key)
            else:
                before = self.oracle.calls
                resolved = self.batcher.resolve_many(unknown)
                fresh = self.oracle.calls - before
                self.stats.resolutions += len(unknown)
                self.stats.batched_resolutions += len(unknown)
                self.stats.oracle_resolutions += fresh
                self.stats.strong_calls += fresh
                self.stats.cached_resolutions += len(unknown) - fresh
                for key in unknown:  # sorted — deterministic commit order
                    if self.graph.add_edge(*key, resolved[key]):
                        self._bound_memo.pop(key, None)
                        self._bounder.notify_resolved(*key, resolved[key])
        if self._approx_cache:
            # Exact values win over cached estimates — a pair may have been
            # resolved exactly after its estimate was accepted.
            approx = self._approx_cache
            out: Dict[Pair, float] = {}
            for key in keys:
                exact = self.graph.get(*key)
                out[key] = exact if exact is not None else approx[key]
            return out
        return {key: self.graph.get(*key) for key in keys}

    def prefetch_thresholds(self, items: Iterable[Tuple[Pair, float]]) -> int:
        """Batch-resolve every pair its threshold cannot rule out.

        ``items`` yields ``((i, j), threshold)`` — a pair is fetched when its
        distance is unknown and its lower bound is below ``threshold``,
        i.e. exactly the pairs a subsequent serial scan would resolve one by
        one.  No-op (returns 0) without a batcher, so algorithms call this
        unconditionally before their decision loops.
        """
        if self.batcher is None:
            return 0
        candidates: List[Tuple[Pair, float]] = []
        for (i, j), threshold in items:
            if i == j or self.graph.get(i, j) is not None:
                continue
            candidates.append(((i, j), threshold))
        if not candidates:
            return 0
        frontier_bounds = self.bounds_many([pair for pair, _ in candidates])
        wanted = [
            pair
            for (pair, threshold), b in zip(candidates, frontier_bounds)
            if b.lower < threshold
        ]
        if wanted:
            self.resolve_many(wanted)
        return len(wanted)

    # -- bound queries ------------------------------------------------------

    def bounds(self, i: int, j: int) -> Bounds:
        """Current bounds on ``dist(i, j)`` (free — no oracle calls).

        Always *fresh*: a memoised interval is served only when both
        endpoint epochs are unchanged, i.e. when recomputation would return
        the identical interval.
        """
        self.stats.bound_queries += 1
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        key = canonical_pair(i, j)
        if self.bound_cache:
            entry = self._bound_memo.get(key)
            if (
                entry is not None
                and entry[1] == self.graph.node_epoch(key[0])
                and entry[2] == self.graph.node_epoch(key[1])
            ):
                self.stats.bound_cache_hits += 1
                return entry[0]
        return self._compute_bounds(key)

    def bounds_many(self, pairs: Iterable[Pair]) -> List[Bounds]:
        """Fresh bounds for a whole frontier, batched through the provider.

        Element-for-element equal to ``[self.bounds(i, j) for i, j in
        pairs]`` — known pairs and memo hits are answered inline, the rest
        go to the provider's ``bounds_many`` (one array-kernel dispatch for
        vectorised schemes) and land in the memo.
        """
        pairs = list(pairs)
        self.stats.bound_queries += len(pairs)
        out: List[Optional[Bounds]] = [None] * len(pairs)
        todo_keys: List[Pair] = []
        todo_slots: Dict[Pair, List[int]] = {}
        graph = self.graph
        for idx, (i, j) in enumerate(pairs):
            if i == j:
                out[idx] = Bounds(0.0, 0.0)
                continue
            known = graph.get(i, j)
            if known is not None:
                out[idx] = Bounds(known, known)
                continue
            key = canonical_pair(i, j)
            slots = todo_slots.get(key)
            if slots is not None:  # duplicate within the batch
                slots.append(idx)
                continue
            if self.bound_cache:
                entry = self._bound_memo.get(key)
                if (
                    entry is not None
                    and entry[1] == graph.node_epoch(key[0])
                    and entry[2] == graph.node_epoch(key[1])
                ):
                    self.stats.bound_cache_hits += 1
                    out[idx] = entry[0]
                    continue
            todo_slots[key] = [idx]
            todo_keys.append(key)
        if todo_keys:
            batch_fn = getattr(self._bounder, "bounds_many", None)
            start = time.perf_counter()
            if batch_fn is None:
                computed = [self._bounder.bounds(*key) for key in todo_keys]
            else:
                computed = batch_fn(todo_keys)
            self.stats.bound_time_s += time.perf_counter() - start
            if len(todo_keys) > 1 and getattr(self._bounder, "vectorized_bounds", False):
                self.stats.vectorized_batches += 1
            for key, b in zip(todo_keys, computed):
                if self._gap_hist is not None:
                    self._gap_hist.observe(b.upper - b.lower)
                if self.bound_cache:
                    self._bound_memo[key] = (
                        b,
                        graph.node_epoch(key[0]),
                        graph.node_epoch(key[1]),
                    )
                for idx in todo_slots[key]:
                    out[idx] = b
        return out

    def _compute_bounds(self, key: Pair) -> Bounds:
        """Recompute (and memoise) the provider interval for a canonical pair."""
        graph = self.graph
        epoch_lo = graph.node_epoch(key[0])
        epoch_hi = graph.node_epoch(key[1])
        start = time.perf_counter()
        b = self._bounder.bounds(*key)
        self.stats.bound_time_s += time.perf_counter() - start
        if self._gap_hist is not None:
            self._gap_hist.observe(b.upper - b.lower)
        if self.bound_cache:
            self._bound_memo[key] = (b, epoch_lo, epoch_hi)
        return b

    def _bounds_for_decision(self, i: int, j: int) -> Tuple[Bounds, bool]:
        """Bounds for a predicate, allowing a stale memo entry.

        Returns ``(interval, fresh)``.  A stale interval (``fresh=False``)
        still contains the true distance — added edges only tighten bounds —
        so a *conclusive* verdict read from it is exactly the verdict fresh
        bounds would give.  Callers must recompute before treating an
        inconclusive stale interval as final.
        """
        self.stats.bound_queries += 1
        if i == j:
            return Bounds(0.0, 0.0), True
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known), True
        key = canonical_pair(i, j)
        if self.bound_cache:
            entry = self._bound_memo.get(key)
            if entry is not None:
                if entry[1] == self.graph.node_epoch(key[0]) and entry[2] == self.graph.node_epoch(
                    key[1]
                ):
                    self.stats.bound_cache_hits += 1
                    return entry[0], True
                return entry[0], False
        return self._compute_bounds(key), True

    def _refresh_bounds(self, i: int, j: int) -> Bounds:
        """Force-recompute bounds for a pair known to be unresolved."""
        return self._compute_bounds(canonical_pair(i, j))

    # -- re-authored predicates ----------------------------------------------

    def is_at_least(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) >= threshold``.

        Decides from bounds when possible (``LB >= t`` or ``UB < t``); falls
        back to one oracle resolution otherwise.
        """
        b, fresh = self._bounds_for_decision(i, j)
        if b.lower >= threshold:
            if not fresh:
                self.stats.bound_cache_hits += 1
            self.stats.decided_by_bounds += 1
            return True
        if b.upper < threshold:
            if not fresh:
                self.stats.bound_cache_hits += 1
            self.stats.decided_by_bounds += 1
            return False
        if not fresh:
            b = self._refresh_bounds(i, j)
            if b.lower >= threshold:
                self.stats.decided_by_bounds += 1
                return True
            if b.upper < threshold:
                self.stats.decided_by_bounds += 1
                return False
        self.stats.decided_by_oracle += 1
        return self.distance(i, j) >= threshold

    def is_greater(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) > threshold``."""
        b, fresh = self._bounds_for_decision(i, j)
        if b.lower > threshold:
            if not fresh:
                self.stats.bound_cache_hits += 1
            self.stats.decided_by_bounds += 1
            return True
        if b.upper <= threshold:
            if not fresh:
                self.stats.bound_cache_hits += 1
            self.stats.decided_by_bounds += 1
            return False
        if not fresh:
            b = self._refresh_bounds(i, j)
            if b.lower > threshold:
                self.stats.decided_by_bounds += 1
                return True
            if b.upper <= threshold:
                self.stats.decided_by_bounds += 1
                return False
        self.stats.decided_by_oracle += 1
        return self.distance(i, j) > threshold

    def is_less_than(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) < threshold``."""
        return not self.is_at_least(i, j, threshold)

    def less(self, a: Pair, b: Pair) -> bool:
        """Exact answer to ``dist(*a) < dist(*b)``.

        Uses the paper's §3 reformulation ``UB(a) < LB(b) ⇒ true`` /
        ``LB(a) >= UB(b) ⇒ false`` before resorting to resolution.  The
        provider's :meth:`BoundProvider.decide_less` (a joint-feasibility
        decision for schemes like the Direct Feasibility Test; ``None`` for
        the rest) runs before any oracle call.
        """
        ba, fresh_a = self._bounds_for_decision(*a)
        bb, fresh_b = self._bounds_for_decision(*b)
        if ba.upper < bb.lower:
            self.stats.bound_cache_hits += (not fresh_a) + (not fresh_b)
            self.stats.decided_by_bounds += 1
            return True
        if ba.lower >= bb.upper:
            self.stats.bound_cache_hits += (not fresh_a) + (not fresh_b)
            self.stats.decided_by_bounds += 1
            return False
        if not (fresh_a and fresh_b):
            if not fresh_a:
                ba = self._refresh_bounds(*a)
            if not fresh_b:
                bb = self._refresh_bounds(*b)
            if ba.upper < bb.lower:
                self.stats.decided_by_bounds += 1
                return True
            if ba.lower >= bb.upper:
                self.stats.decided_by_bounds += 1
                return False
        verdict = self._bounder.decide_less(a, b)
        if verdict is not None:
            self.stats.decided_by_bounds += 1
            return verdict
        self.stats.decided_by_oracle += 1
        # Resolve the pair with the wider interval first: its value may settle
        # the comparison against the other pair's bounds with a single call.
        first, second = (a, b) if ba.gap >= bb.gap else (b, a)
        d_first = self.distance(*first)
        b_second = self.bounds(*second)
        if first == a:
            if d_first < b_second.lower:
                return True
            if d_first >= b_second.upper:
                return False
            return d_first < self.distance(*b)
        if b_second.upper < d_first:
            return True
        if b_second.lower >= d_first:
            return False
        return self.distance(*a) < d_first

    def compare(self, a: Pair, b: Pair) -> int:
        """Exact three-way comparison: sign of ``dist(*a) − dist(*b)``.

        The decision ladder mirrors :meth:`less`: disjoint bound intervals
        settle the sign with no oracle call; overlapping intervals consult
        the provider's :meth:`~repro.bounds.base.BoundProvider.decide_less`
        joint test in both directions; only then are the pairs resolved.
        Exact intervals (``lower == upper``) are treated as resolved values,
        so a tie between two already-known distances returns 0 for free.
        This is the seam the comparison-only oracle mode builds on — see
        :meth:`comparison_view`.
        """
        ba, fresh_a = self._bounds_for_decision(*a)
        bb, fresh_b = self._bounds_for_decision(*b)
        if ba.upper < bb.lower:
            self.stats.bound_cache_hits += (not fresh_a) + (not fresh_b)
            self.stats.decided_by_bounds += 1
            return -1
        if ba.lower > bb.upper:
            self.stats.bound_cache_hits += (not fresh_a) + (not fresh_b)
            self.stats.decided_by_bounds += 1
            return 1
        if not (fresh_a and fresh_b):
            if not fresh_a:
                ba = self._refresh_bounds(*a)
            if not fresh_b:
                bb = self._refresh_bounds(*b)
            if ba.upper < bb.lower:
                self.stats.decided_by_bounds += 1
                return -1
            if ba.lower > bb.upper:
                self.stats.decided_by_bounds += 1
                return 1
        if ba.is_exact and bb.is_exact:
            self.stats.decided_by_bounds += 1
            da, db = ba.lower, bb.lower
        else:
            if self._bounder.decide_less(a, b):
                self.stats.decided_by_bounds += 1
                return -1
            if self._bounder.decide_less(b, a):
                self.stats.decided_by_bounds += 1
                return 1
            self.stats.decided_by_oracle += 1
            da = self.distance(*a)
            db = self.distance(*b)
        if da < db:
            return -1
        if da > db:
            return 1
        return 0

    def comparison_view(self) -> ComparisonOracle:
        """An ordering-only facade over this resolver.

        The returned :class:`~repro.core.oracle.ComparisonOracle` answers
        ``less``/``compare``/``rank_less`` ordering queries through this
        resolver's bound-accelerated predicates but never exposes a distance
        magnitude, and counts the ordering queries it serves.
        """
        return ComparisonOracle(self)

    # -- bounded searches ------------------------------------------------------

    def argmin(
        self,
        u: int,
        candidates: Sequence[int],
        upper_limit: float = math.inf,
    ) -> Tuple[Optional[int], float]:
        """Exact nearest candidate to ``u`` with lower-bound pruning.

        Returns ``(index, distance)`` of the candidate minimising
        ``dist(u, c)`` with earliest-index tie-breaking (matching a vanilla
        linear scan), or ``(None, inf)`` when every candidate's distance is
        ``>= upper_limit``.  The limit is *exclusive*: a candidate at exactly
        ``upper_limit`` is never returned.  Candidates whose lower bound
        already meets the current best are skipped without oracle calls.
        """
        if self.batched and candidates:
            return self._argmin_batched(u, candidates, upper_limit)
        best_idx: Optional[int] = None
        best_dist = upper_limit
        # Probe candidates in ascending lower-bound order so tight candidates
        # shrink the pruning threshold early.  One batched bound sweep feeds
        # the sort; the scan below re-reads bounds pair by pair (they tighten
        # as resolutions land).
        initial = self.bounds_many([(u, c) for c in candidates])
        order = sorted(range(len(candidates)), key=lambda pos: initial[pos].lower)
        for pos in order:
            c = candidates[pos]
            b = self.bounds(u, c)
            if b.lower > best_dist:
                self.stats.decided_by_bounds += 1
                continue
            if b.lower == best_dist and (best_idx is None or best_idx <= pos):
                # Cannot strictly improve; cannot win a tie either (and with
                # no incumbent, matching the exclusive limit never counts).
                self.stats.decided_by_bounds += 1
                continue
            self.stats.decided_by_oracle += 1
            d = self.distance(u, c)
            if d < best_dist or (d == best_dist and best_idx is not None and pos < best_idx):
                best_dist = d
                best_idx = pos
        if best_idx is None:
            return None, math.inf
        return candidates[best_idx], best_dist

    def _argmin_batched(
        self,
        u: int,
        candidates: Sequence[int],
        upper_limit: float,
    ) -> Tuple[Optional[int], float]:
        """Batched argmin: one frontier resolution, then the vanilla scan.

        Resolves every candidate whose lower bound leaves it alive under the
        exclusive ``upper_limit`` — a superset of what the adaptive serial
        scan resolves — then applies the identical update rule, so the
        result (value and tie-broken index) matches the serial path.
        """
        frontier: list[int] = []
        frontier_bounds = self.bounds_many([(u, c) for c in candidates])
        for pos, b in enumerate(frontier_bounds):
            if b.lower >= upper_limit:
                self.stats.decided_by_bounds += 1
                continue
            frontier.append(pos)
        if not frontier:
            return None, math.inf
        self.resolve_many([(u, candidates[pos]) for pos in frontier])
        self.stats.decided_by_oracle += len(frontier)
        best_idx: Optional[int] = None
        best_dist = upper_limit
        for pos in frontier:  # ascending position — earliest index wins ties
            d = self.distance(u, candidates[pos])
            if d < best_dist:
                best_dist = d
                best_idx = pos
        if best_idx is None:
            return None, math.inf
        return candidates[best_idx], best_dist

    def knearest(
        self,
        u: int,
        candidates: Iterable[int],
        k: int,
    ) -> list[Tuple[float, int]]:
        """Exact ``k`` nearest candidates to ``u`` with threshold pruning.

        Returns ``[(distance, candidate), ...]`` sorted ascending (ties by
        candidate id), identical to a vanilla full scan.  A candidate is
        resolved only when its lower bound beats the current ``k``-th best.
        """
        if k <= 0:
            return []
        pool = [c for c in candidates if c != u]
        # Ascending lower bound order maximises early threshold shrinkage;
        # the whole frontier is bounded in one batched sweep.
        initial = self.bounds_many([(u, c) for c in pool])
        order = sorted(range(len(pool)), key=lambda pos: initial[pos].lower)
        pool = [pool[pos] for pos in order]
        if self.batched and pool:
            return self._knearest_batched(u, pool, k)
        heap: list[Tuple[float, int]] = []
        kth = math.inf
        for c in pool:
            b = self.bounds(u, c)
            if len(heap) >= k and b.lower > kth:
                self.stats.decided_by_bounds += 1
                continue
            self.stats.decided_by_oracle += 1
            d = self.distance(u, c)
            heap.append((d, c))
            if len(heap) >= k:
                heap.sort()
                del heap[k:]
                kth = heap[-1][0]
        heap.sort()
        return heap[:k]

    def _knearest_batched(self, u: int, pool: list, k: int) -> list[Tuple[float, int]]:
        """Batched kNN: two frontier resolutions instead of a serial scan.

        Round 1 fetches the ``k`` lowest-lower-bound candidates (the serial
        scan resolves those unconditionally) to establish the pruning
        threshold; round 2 fetches everything whose lower bound still beats
        it.  The resolved set is a superset of the serial scan's, so the
        selected neighbours are identical; under uninformative bounds the
        two sets — and hence the oracle call counts — coincide exactly.
        """
        head = pool[:k]
        self.resolve_many([(u, c) for c in head])
        kth = sorted(self.distance(u, c) for c in head)[min(k, len(head)) - 1]
        tail_bounds = self.bounds_many([(u, c) for c in pool[k:]])
        frontier = [c for c, b in zip(pool[k:], tail_bounds) if b.lower <= kth]
        if len(pool) > k:
            self.stats.decided_by_bounds += len(pool) - k - len(frontier)
        if frontier:
            self.resolve_many([(u, c) for c in frontier])
        self.stats.decided_by_oracle += len(head) + len(frontier)
        result = [(self.distance(u, c), c) for c in head + frontier]
        result.sort()
        return result[:k]

    # -- accounting -----------------------------------------------------------

    def collect_stats(self) -> ResolverStats:
        """The live :class:`ResolverStats`, with provider counters synced.

        Pulls ``dijkstra_runs``, ``weak_calls``, and ``weak_band`` from the
        active provider (SPLUB and the weak provider keep them;
        :class:`~repro.core.bounds.IntersectionBounder` sums its members)
        so harness records and CLI tables see one coherent view.  When a
        registry is attached, the delta since the last collection is folded
        into its counters (publishing is idempotent across repeat calls).
        """
        self.stats.dijkstra_runs = int(getattr(self._bounder, "dijkstra_runs", 0))
        self.stats.weak_calls = int(getattr(self._bounder, "weak_calls", 0))
        self.stats.weak_band = int(getattr(self._bounder, "weak_band", 0))
        if self.registry is not None:
            from repro.obs.bridge import publish_resolver_stats

            self._published_stats = publish_resolver_stats(
                self.registry, self.stats, self._published_stats
            )
        return self.stats
