"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class MetricViolationError(ReproError):
    """A distance function violated a metric axiom.

    Raised by validating wrappers (e.g. ``ValidatingOracle``) when a returned
    distance is negative, asymmetric, or breaks the triangle inequality with
    previously observed distances.
    """


class UnknownDistanceError(ReproError, KeyError):
    """A distance was requested that is not present in a partial graph."""

    def __init__(self, i: int, j: int) -> None:
        super().__init__(f"distance between objects {i} and {j} is not resolved")
        self.i = i
        self.j = j


class InvalidObjectError(ReproError, IndexError):
    """An object index lies outside the universe of the dataset or graph."""

    def __init__(self, index: int, universe_size: int) -> None:
        super().__init__(
            f"object index {index} out of range for universe of size {universe_size}"
        )
        self.index = index
        self.universe_size = universe_size


class BudgetExceededError(ReproError):
    """A distance-call budget set on an oracle was exhausted."""

    def __init__(self, budget: int) -> None:
        super().__init__(f"distance-oracle call budget of {budget} exhausted")
        self.budget = budget


class SolverError(ReproError):
    """An LP solver (used by the Direct Feasibility Test) failed unexpectedly."""


class OracleResolutionError(ReproError):
    """An oracle call kept failing after every configured retry.

    Raised by the executors in :mod:`repro.exec` once a pair's attempts are
    exhausted; ``__cause__`` carries the final underlying failure.
    """

    def __init__(self, pair: tuple[int, int], attempts: int) -> None:
        super().__init__(
            f"oracle call for pair {pair} failed after {attempts} attempt(s)"
        )
        self.pair = pair
        self.attempts = attempts


class ConfigurationError(ReproError, ValueError):
    """A component was constructed or combined with invalid parameters."""


class SnapshotMismatchError(ConfigurationError):
    """A persisted graph snapshot does not match the engine restoring it.

    Raised by :meth:`repro.service.ProximityEngine.restore` when the
    archive's dataset fingerprint (or universe size) disagrees with the
    live engine — silently mixing distances from different datasets would
    corrupt every future answer.
    """

    def __init__(self, expected: str, found: str) -> None:
        super().__init__(
            f"snapshot fingerprint mismatch: engine is {expected!r} "
            f"but the archive was written for {found!r}"
        )
        self.expected = expected
        self.found = found


class JobCancelledError(ReproError):
    """A service job was cancelled (or its deadline expired) while running.

    Raised inside the job's resolver at the next oracle-resolution point;
    the engine converts it into a ``cancelled``/``expired`` job status
    rather than letting it propagate.
    """


class JobBudgetExhaustedError(ReproError):
    """A service job hit its per-job oracle-call budget.

    ``unresolved`` carries the pairs whose resolution was refused; the
    engine returns them in a *partial* :class:`~repro.service.JobResult`
    instead of crashing the engine.
    """

    def __init__(self, budget: int, unresolved: tuple[tuple[int, int], ...]) -> None:
        super().__init__(
            f"per-job oracle budget of {budget} call(s) exhausted "
            f"({len(unresolved)} pair(s) left unresolved)"
        )
        self.budget = budget
        self.unresolved = unresolved
