"""Persistence for resolved distances.

When each oracle call costs real money or minutes, the resolved-edge set is
an asset worth keeping across sessions.  These helpers round-trip a
:class:`PartialDistanceGraph` through a compressed ``.npz`` archive, and can
pre-seed a :class:`DistanceOracle`'s cache so a resumed run never re-pays
for a distance it already bought.

Archive format (``_FORMAT_VERSION = 2``): besides the edge arrays, a v2
archive carries the graph's edge-insert epoch counters (global epoch plus
per-node epochs — redundant with the edge set, stored as an integrity
check) and an optional JSON metadata dict.  The service engine puts a
dataset fingerprint and the oracle name there, so a restarted engine can
refuse a snapshot written for different data
(:class:`~repro.core.exceptions.SnapshotMismatchError`).  Version-1
archives (edges only) still load; they surface an empty metadata dict.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 2

#: Archive versions this module can read.
_SUPPORTED_VERSIONS = (1, 2)


@dataclass
class GraphArchive:
    """A loaded snapshot: the graph plus everything stored alongside it."""

    graph: PartialDistanceGraph
    version: int
    #: Global edge-insert epoch recorded at save time (== num_edges).
    epoch: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> Optional[str]:
        """The dataset fingerprint stored by the writer, if any."""
        value = self.metadata.get("fingerprint")
        return None if value is None else str(value)


def save_graph(
    graph: PartialDistanceGraph,
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a partial graph's resolved edges to a compressed ``.npz``.

    ``metadata`` must be JSON-serialisable; the service engine stores a
    dataset fingerprint and oracle name there so :func:`load_archive` (and
    ``Engine.restore``) can detect snapshots from a different dataset.
    """
    edges = list(graph.edges())
    if edges:
        i_arr = np.array([e[0] for e in edges], dtype=np.int64)
        j_arr = np.array([e[1] for e in edges], dtype=np.int64)
        w_arr = np.array([e[2] for e in edges], dtype=np.float64)
    else:
        i_arr = np.empty(0, dtype=np.int64)
        j_arr = np.empty(0, dtype=np.int64)
        w_arr = np.empty(0, dtype=np.float64)
    node_epochs = np.array(
        [graph.node_epoch(i) for i in range(graph.n)], dtype=np.int64
    )
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(graph.n),
        i=i_arr,
        j=j_arr,
        w=w_arr,
        epoch=np.int64(graph.epoch),
        node_epochs=node_epochs,
        metadata=np.array(json.dumps(metadata or {})),
    )


def load_archive(path: PathLike) -> GraphArchive:
    """Load a snapshot written by :func:`save_graph` (any supported version).

    The rebuilt graph's epoch counters are checked against the stored ones
    — a mismatch means the archive is internally corrupt.
    """
    with np.load(path) as data:
        version = int(data["version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported graph archive version {version}; "
                f"this build reads versions {_SUPPORTED_VERSIONS}"
            )
        n = int(data["n"])
        graph = PartialDistanceGraph(n)
        for i, j, w in zip(data["i"], data["j"], data["w"]):
            graph.add_edge(int(i), int(j), float(w))
        if version == 1:
            return GraphArchive(graph=graph, version=1, epoch=graph.epoch)
        epoch = int(data["epoch"])
        node_epochs = data["node_epochs"]
        metadata = json.loads(str(data["metadata"]))
    if epoch != graph.epoch:
        raise ValueError(
            f"corrupt archive: stored epoch {epoch} but the edge set "
            f"rebuilds to epoch {graph.epoch}"
        )
    rebuilt = np.array([graph.node_epoch(i) for i in range(n)], dtype=np.int64)
    if not np.array_equal(rebuilt, node_epochs):
        raise ValueError(
            "corrupt archive: stored per-node epochs disagree with the edge set"
        )
    return GraphArchive(graph=graph, version=version, epoch=epoch, metadata=metadata)


def load_graph(path: PathLike) -> PartialDistanceGraph:
    """Rebuild just the graph from an archive saved by :func:`save_graph`."""
    return load_archive(path).graph


def seed_oracle_cache(oracle: DistanceOracle, graph: PartialDistanceGraph) -> int:
    """Pre-fill an oracle's cache from a saved graph (no charges).

    Returns the number of seeded pairs.  The oracle must cover at least as
    many objects as the graph.
    """
    if oracle.n < graph.n:
        raise ValueError(
            f"oracle covers {oracle.n} objects but the graph has {graph.n}"
        )
    seeded = 0
    for i, j, w in graph.edges():
        if oracle.seed(i, j, w):
            seeded += 1
    return seeded


def resume_resolver(oracle: DistanceOracle, path: PathLike):
    """One-call resume: load a saved graph, seed the oracle, build a resolver.

    The returned :class:`~repro.core.resolver.SmartResolver` starts with the
    archive's edges already known; attach any bound provider to
    ``resolver.bounder`` afterwards (providers built on ``resolver.graph``
    absorb the preloaded edges at construction).
    """
    from repro.core.resolver import SmartResolver

    graph = load_graph(path)
    if graph.n != oracle.n:
        raise ValueError(
            f"archive holds {graph.n} objects but the oracle covers {oracle.n}"
        )
    seed_oracle_cache(oracle, graph)
    return SmartResolver(oracle, graph=graph)
