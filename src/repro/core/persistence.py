"""Persistence for resolved distances.

When each oracle call costs real money or minutes, the resolved-edge set is
an asset worth keeping across sessions.  These helpers round-trip a
:class:`PartialDistanceGraph` through a compressed ``.npz`` archive, and can
pre-seed a :class:`DistanceOracle`'s cache so a resumed run never re-pays
for a distance it already bought.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 1


def save_graph(graph: PartialDistanceGraph, path: PathLike) -> None:
    """Write a partial graph's resolved edges to a compressed ``.npz``."""
    edges = list(graph.edges())
    if edges:
        i_arr = np.array([e[0] for e in edges], dtype=np.int64)
        j_arr = np.array([e[1] for e in edges], dtype=np.int64)
        w_arr = np.array([e[2] for e in edges], dtype=np.float64)
    else:
        i_arr = np.empty(0, dtype=np.int64)
        j_arr = np.empty(0, dtype=np.int64)
        w_arr = np.empty(0, dtype=np.float64)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(graph.n),
        i=i_arr,
        j=j_arr,
        w=w_arr,
    )


def load_graph(path: PathLike) -> PartialDistanceGraph:
    """Rebuild a partial graph saved by :func:`save_graph`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported graph archive version {version}")
        n = int(data["n"])
        graph = PartialDistanceGraph(n)
        for i, j, w in zip(data["i"], data["j"], data["w"]):
            graph.add_edge(int(i), int(j), float(w))
    return graph


def seed_oracle_cache(oracle: DistanceOracle, graph: PartialDistanceGraph) -> int:
    """Pre-fill an oracle's cache from a saved graph (no charges).

    Returns the number of seeded pairs.  The oracle must cover at least as
    many objects as the graph.
    """
    if oracle.n < graph.n:
        raise ValueError(
            f"oracle covers {oracle.n} objects but the graph has {graph.n}"
        )
    seeded = 0
    for i, j, w in graph.edges():
        if oracle.seed(i, j, w):
            seeded += 1
    return seeded


def resume_resolver(oracle: DistanceOracle, path: PathLike):
    """One-call resume: load a saved graph, seed the oracle, build a resolver.

    The returned :class:`~repro.core.resolver.SmartResolver` starts with the
    archive's edges already known; attach any bound provider to
    ``resolver.bounder`` afterwards (providers built on ``resolver.graph``
    absorb the preloaded edges at construction).
    """
    from repro.core.resolver import SmartResolver

    graph = load_graph(path)
    if graph.n != oracle.n:
        raise ValueError(
            f"archive holds {graph.n} objects but the oracle covers {oracle.n}"
        )
    seed_oracle_cache(oracle, graph)
    return SmartResolver(oracle, graph=graph)
