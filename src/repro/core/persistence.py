"""Persistence for resolved distances.

When each oracle call costs real money or minutes, the resolved-edge set is
an asset worth keeping across sessions.  These helpers round-trip a
:class:`PartialDistanceGraph` through a compressed ``.npz`` archive, and can
pre-seed a :class:`DistanceOracle`'s cache so a resumed run never re-pays
for a distance it already bought.

Archive format: besides the edge arrays, a v2 archive carries the graph's
edge-insert epoch counters (global epoch plus per-node epochs — redundant
with the edge set, stored as an integrity check) and an optional JSON
metadata dict.  The service engine puts a dataset fingerprint and the
oracle name there, so a restarted engine can refuse a snapshot written for
different data (:class:`~repro.core.exceptions.SnapshotMismatchError`).
Version-1 archives (edges only) still load; they surface an empty metadata
dict.

A *mutated* graph (one that has seen ``remove_node``/``grow``/``revive``)
is written as version 3: the alive mask and the true stored epoch counters
ride along, and :func:`load_archive` replays the edges then reinstalls the
mutation state via ``restore_mutation_state`` — so tombstoned ids and the
monotone epochs survive a snapshot/restore cycle exactly.  Never-mutated
graphs keep emitting v2 archives, byte-compatible with older readers.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.core.oracle import DistanceOracle
from repro.core.partial_graph import PartialDistanceGraph

PathLike = Union[str, os.PathLike]

_FORMAT_VERSION = 2

#: Format version used for graphs carrying mutation state (tombstones).
_MUTATED_FORMAT_VERSION = 3

#: Archive versions this module can read.
_SUPPORTED_VERSIONS = (1, 2, 3)


@dataclass
class GraphArchive:
    """A loaded snapshot: the graph plus everything stored alongside it."""

    graph: PartialDistanceGraph
    version: int
    #: Global edge-insert epoch recorded at save time (== num_edges for
    #: append-only v1/v2 archives; the true monotone counter for v3).
    epoch: int
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def fingerprint(self) -> Optional[str]:
        """The dataset fingerprint stored by the writer, if any."""
        value = self.metadata.get("fingerprint")
        return None if value is None else str(value)


@dataclass
class ColumnSet:
    """Raw edge columns of an archive, before any graph is rebuilt.

    The columnar twin of :class:`GraphArchive`:
    :class:`~repro.core.csr_store.CSRStore` loads archives through this
    (no per-edge Python objects), while :func:`load_archive` layers the
    full replay-into-a-graph validation on top.
    """

    n: int
    i: np.ndarray
    j: np.ndarray
    w: np.ndarray
    version: int
    epoch: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: v3 only: per-slot alive mask (None for append-only archives).
    alive: Optional[np.ndarray] = None
    #: v3 only: stored per-node epoch counters (None for v1/v2, where they
    #: are redundant with the edge set).
    node_epochs: Optional[np.ndarray] = None


def save_columns(
    path: PathLike,
    n: int,
    i: np.ndarray,
    j: np.ndarray,
    w: np.ndarray,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write raw edge columns as a v2 archive.

    The per-node epoch counters are derived from the columns (node epoch ==
    known degree), so a store and a graph holding the same edge set emit
    identical archives.  ``metadata`` must be JSON-serialisable.
    """
    i_arr = np.asarray(i, dtype=np.int64)
    j_arr = np.asarray(j, dtype=np.int64)
    w_arr = np.asarray(w, dtype=np.float64)
    node_epochs = np.bincount(i_arr, minlength=n) + np.bincount(j_arr, minlength=n)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        n=np.int64(n),
        i=i_arr,
        j=j_arr,
        w=w_arr,
        epoch=np.int64(len(i_arr)),
        node_epochs=node_epochs.astype(np.int64),
        metadata=np.array(json.dumps(metadata or {})),
    )


def save_graph(
    graph: PartialDistanceGraph,
    path: PathLike,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a partial graph's resolved edges to a compressed ``.npz``.

    ``metadata`` must be JSON-serialisable; the service engine stores a
    dataset fingerprint and oracle name there so :func:`load_archive` (and
    ``Engine.restore``) can detect snapshots from a different dataset.
    A mutated graph (tombstones, or epoch ahead of the edge count) is
    written as a v3 archive that carries the alive mask and true epochs.
    """
    i_arr, j_arr, w_arr = graph.edge_arrays()
    if graph.mutated:
        np.savez_compressed(
            path,
            version=np.int64(_MUTATED_FORMAT_VERSION),
            n=np.int64(graph.n),
            i=np.asarray(i_arr, dtype=np.int64),
            j=np.asarray(j_arr, dtype=np.int64),
            w=np.asarray(w_arr, dtype=np.float64),
            epoch=np.int64(graph.epoch),
            node_epochs=np.array(
                [graph.node_epoch(u) for u in range(graph.n)], dtype=np.int64
            ),
            alive=np.array(
                [graph.is_alive(u) for u in range(graph.n)], dtype=np.bool_
            ),
            metadata=np.array(json.dumps(metadata or {})),
        )
        return
    save_columns(path, graph.n, i_arr, j_arr, w_arr, metadata=metadata)


def load_columns(path: PathLike) -> ColumnSet:
    """Load an archive's raw edge columns with columnar integrity checks.

    Validates without rebuilding a Python graph: ids in range and off the
    diagonal, non-negative weights, no duplicate pairs, and (v2) the stored
    epoch counters consistent with the columns.  :func:`load_archive` runs
    the stricter replay path on top of this.
    """
    with np.load(path) as data:
        version = int(data["version"])
        if version not in _SUPPORTED_VERSIONS:
            raise ValueError(
                f"unsupported graph archive version {version}; "
                f"this build reads versions {_SUPPORTED_VERSIONS}"
            )
        n = int(data["n"])
        i_arr = np.asarray(data["i"], dtype=np.int64)
        j_arr = np.asarray(data["j"], dtype=np.int64)
        w_arr = np.asarray(data["w"], dtype=np.float64)
        alive = None
        if version == 1:
            epoch = len(i_arr)
            node_epochs = None
            metadata: Dict[str, Any] = {}
        else:
            epoch = int(data["epoch"])
            node_epochs = np.asarray(data["node_epochs"], dtype=np.int64)
            metadata = json.loads(str(data["metadata"]))
            if version >= 3:
                alive = np.asarray(data["alive"], dtype=np.bool_)
    if len(i_arr) != len(j_arr) or len(i_arr) != len(w_arr):
        raise ValueError("corrupt archive: edge columns disagree in length")
    if len(i_arr):
        if i_arr.min() < 0 or j_arr.min() < 0 or max(i_arr.max(), j_arr.max()) >= n:
            raise ValueError("corrupt archive: edge ids out of range")
        if np.any(i_arr == j_arr):
            raise ValueError("corrupt archive: self-edge in the columns")
        if w_arr.min() < 0:
            raise ValueError("corrupt archive: negative distance in the columns")
        keys = np.minimum(i_arr, j_arr) * n + np.maximum(i_arr, j_arr)
        if len(np.unique(keys)) != len(keys):
            raise ValueError("corrupt archive: duplicate edges in the columns")
    if version < 3:
        if epoch != len(i_arr):
            raise ValueError(
                f"corrupt archive: stored epoch {epoch} but the edge set "
                f"rebuilds to epoch {len(i_arr)}"
            )
        if node_epochs is not None:
            rebuilt = np.bincount(i_arr, minlength=n) + np.bincount(j_arr, minlength=n)
            if not np.array_equal(rebuilt.astype(np.int64), node_epochs):
                raise ValueError(
                    "corrupt archive: stored per-node epochs disagree with the "
                    "edge set"
                )
    else:
        # Mutated graphs: epochs are monotone counters that only ever run
        # AHEAD of what the surviving edge set would rebuild to.
        if epoch < len(i_arr):
            raise ValueError(
                f"corrupt archive: stored epoch {epoch} is behind the "
                f"{len(i_arr)}-edge set"
            )
        if alive is None or len(alive) != n:
            raise ValueError("corrupt archive: v3 alive mask missing or mis-sized")
        if node_epochs is None or len(node_epochs) != n:
            raise ValueError("corrupt archive: v3 node epochs missing or mis-sized")
        degrees = np.bincount(i_arr, minlength=n) + np.bincount(j_arr, minlength=n)
        if np.any(node_epochs < degrees):
            raise ValueError(
                "corrupt archive: stored per-node epochs behind the edge set"
            )
        if len(i_arr) and np.any(~alive[i_arr] | ~alive[j_arr]):
            raise ValueError("corrupt archive: edge incident to a tombstoned id")
    return ColumnSet(
        n=n,
        i=i_arr,
        j=j_arr,
        w=w_arr,
        version=version,
        epoch=epoch,
        metadata=metadata,
        alive=alive,
        node_epochs=node_epochs,
    )


def load_archive(path: PathLike) -> GraphArchive:
    """Load a snapshot written by :func:`save_graph` (any supported version).

    The rebuilt graph's epoch counters are checked against the stored ones
    — a mismatch means the archive is internally corrupt.
    """
    cols = load_columns(path)
    graph = PartialDistanceGraph(cols.n)
    for i, j, w in zip(cols.i, cols.j, cols.w):
        graph.add_edge(int(i), int(j), float(w))
    if cols.version == 1:
        return GraphArchive(graph=graph, version=1, epoch=graph.epoch)
    if cols.version >= 3:
        graph.restore_mutation_state(
            [bool(a) for a in cols.alive],
            cols.epoch,
            [int(e) for e in cols.node_epochs],
        )
    return GraphArchive(
        graph=graph, version=cols.version, epoch=cols.epoch, metadata=cols.metadata
    )


def load_graph(path: PathLike) -> PartialDistanceGraph:
    """Rebuild just the graph from an archive saved by :func:`save_graph`."""
    return load_archive(path).graph


def seed_oracle_cache(oracle: DistanceOracle, graph: PartialDistanceGraph) -> int:
    """Pre-fill an oracle's cache from a saved graph (no charges).

    Returns the number of seeded pairs.  The oracle must cover at least as
    many objects as the graph.
    """
    if oracle.n < graph.n:
        raise ValueError(
            f"oracle covers {oracle.n} objects but the graph has {graph.n}"
        )
    seeded = 0
    for i, j, w in graph.edges():
        if oracle.seed(i, j, w):
            seeded += 1
    return seeded


def resume_resolver(oracle: DistanceOracle, path: PathLike):
    """One-call resume: load a saved graph, seed the oracle, build a resolver.

    The returned :class:`~repro.core.resolver.SmartResolver` starts with the
    archive's edges already known; attach any bound provider to
    ``resolver.bounder`` afterwards (providers built on ``resolver.graph``
    absorb the preloaded edges at construction).
    """
    from repro.core.resolver import SmartResolver

    graph = load_graph(path)
    if graph.n != oracle.n:
        raise ValueError(
            f"archive holds {graph.n} objects but the oracle covers {oracle.n}"
        )
    seed_oracle_cache(oracle, graph)
    return SmartResolver(oracle, graph=graph)
