"""Reader/writer discipline over shared proximity state.

A long-lived engine (:mod:`repro.service`) serves many concurrent query
jobs against **one** :class:`~repro.core.partial_graph.PartialDistanceGraph`
plus bound provider.  Two access classes exist:

* **reads** — bound queries, graph lookups, adjacency iteration.  Many may
  run at once: the graph's sorted lists, NumPy mirrors, and every provider
  cache are only *replaced wholesale* (epoch-keyed idempotent rebuilds), so
  concurrent readers always observe a consistent snapshot.
* **writes** — committing a resolved edge (graph insert + provider update +
  oracle accounting).  These mutate the sorted adjacency lists in place and
  bump the edge-insert epochs, so they must exclude every reader.

:class:`ReadWriteLock` implements exactly that discipline: shared readers,
exclusive writers, writer preference (a waiting writer blocks *new* reader
generations so sustained query traffic cannot starve commits), and
per-thread reentrancy for reads (a thread already holding the read or write
lock may re-enter the read side freely — bound predicates nest bound
queries).  Lock *upgrading* (read → write while still holding the read
side) deadlocks by construction and is rejected with ``RuntimeError``;
callers release their read hold before committing.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator


class ReadWriteLock:
    """Shared-read / exclusive-write lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer: int | None = None  # ident of the thread holding write
        self._local = threading.local()

    # -- per-thread hold counts --------------------------------------------

    def _counts(self):
        local = self._local
        if not hasattr(local, "reads"):
            local.reads = 0
            local.writes = 0
        return local

    @property
    def read_held(self) -> bool:
        """True when the calling thread holds the read side (possibly nested)."""
        return self._counts().reads > 0

    @property
    def write_held(self) -> bool:
        """True when the calling thread holds the write side."""
        return self._counts().writes > 0

    # -- read side ----------------------------------------------------------

    def acquire_read(self) -> None:
        local = self._counts()
        if local.writes > 0 or local.reads > 0:
            # Reentrant: a writer may read its own updates; nested reads on
            # the same thread must not queue behind a waiting writer (that
            # would deadlock against our own outer hold).
            local.reads += 1
            return
        with self._cond:
            while self._writer is not None or self._waiting_writers > 0:
                self._cond.wait()
            self._active_readers += 1
        local.reads = 1

    def release_read(self) -> None:
        local = self._counts()
        if local.reads <= 0:
            raise RuntimeError("release_read without a matching acquire_read")
        local.reads -= 1
        if local.reads > 0 or local.writes > 0:
            return
        with self._cond:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._cond.notify_all()

    # -- write side ---------------------------------------------------------

    def acquire_write(self) -> None:
        local = self._counts()
        if local.writes > 0:
            local.writes += 1
            return
        if local.reads > 0:
            raise RuntimeError(
                "cannot upgrade a read hold to a write hold; "
                "release the read lock before committing"
            )
        ident = threading.get_ident()
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._active_readers > 0:
                    self._cond.wait()
                self._writer = ident
            finally:
                self._waiting_writers -= 1
        local.writes = 1

    def release_write(self) -> None:
        local = self._counts()
        if local.writes <= 0:
            raise RuntimeError("release_write without a matching acquire_write")
        local.writes -= 1
        if local.writes > 0:
            return
        with self._cond:
            self._writer = None
            self._cond.notify_all()

    # -- context managers ---------------------------------------------------

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """``with`` helper for the shared (read) side."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """``with`` helper for the exclusive (write) side."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
