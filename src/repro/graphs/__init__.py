"""repro.graphs — bound-accelerated navigable-graph index construction.

ROADMAP item 5: build the HNSW/NSG-style navigable graphs people actually
deploy, with the paper's machinery pruning the construction's oracle calls.
The builders are written once against the resolver predicate surface
(``argmin``/``is_less_than``/``less``/``knearest``, primed by ``bounds_many``
sweeps): run them over a bound-equipped
:class:`~repro.core.resolver.SmartResolver` and construction issues strong
oracle calls only where bounds are inconclusive; run them over
:class:`~repro.graphs.naive.DirectResolver` and they are the classic naive
greedy build.  Both emit byte-identical graphs at ``stretch=1.0`` — the
savings are free.

Search is served two ways: :func:`~repro.graphs.search.graph_search`
(numeric, bound-pruned) and :func:`~repro.graphs.search.comparison_search`,
the comparison-only oracle mode (arXiv 1704.01460) driven entirely by
:class:`~repro.core.oracle.ComparisonOracle` ordering queries — no distance
magnitude is ever observed.  :mod:`repro.graphs.evaluate` measures recall@k
against brute-force ground truth.  The service layer serves all of this as
``build_index``/``search_index`` job kinds; see
``docs/index_construction_guide.md``.
"""

from repro.graphs.evaluate import brute_force_knn, evaluate_recall, recall_at_k
from repro.graphs.hnsw import assign_levels, build_hnsw, build_hnsw_naive
from repro.graphs.model import NavigableGraph
from repro.graphs.naive import DirectResolver
from repro.graphs.nsg import build_nsg, build_nsg_naive
from repro.graphs.search import (
    DEFAULT_EF,
    comparison_descend,
    comparison_search,
    graph_search,
    greedy_descend,
    search_layer,
)

__all__ = [
    "DEFAULT_EF",
    "DirectResolver",
    "NavigableGraph",
    "assign_levels",
    "brute_force_knn",
    "build_hnsw",
    "build_hnsw_naive",
    "build_nsg",
    "build_nsg_naive",
    "comparison_descend",
    "comparison_search",
    "evaluate_recall",
    "graph_search",
    "greedy_descend",
    "recall_at_k",
    "search_layer",
]
