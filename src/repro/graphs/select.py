"""Occlusion-based neighbour selection shared by the graph builders.

The Relative Neighborhood Graph rule — drop candidate ``v`` when an
already-selected closer neighbour ``w`` has ``d(v, w) < d(u, v)`` — is what
gives navigable graphs their diverse, well-spread edges (HNSW's "select
neighbors heuristic", NSG's pruning step).  Each occlusion test is a pure
ordering between two pairs, so it routes through ``resolver.less`` where
disjoint bound intervals or the provider's ``decide_less`` joint test settle
it without touching the oracle.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def rng_select(
    resolver,
    u: int,
    candidates: Sequence[Tuple[float, int]],
    m: int,
    *,
    fill: bool = True,
) -> List[int]:
    """Select up to ``m`` diverse neighbours for ``u`` from sorted candidates.

    ``candidates`` must be ascending ``(distance, id)`` pairs (closest
    first).  A candidate is kept unless occluded by an already-kept one
    under the RNG rule.  With ``fill=True`` (HNSW's keep-pruned-connections)
    occluded candidates backfill remaining slots in distance order, so the
    result has exactly ``min(m, len(candidates))`` ids; with ``fill=False``
    (NSG) occluded candidates are dropped outright.  Fully deterministic:
    candidate order is the only tie-break.
    """
    selected: List[int] = []
    pruned: List[int] = []
    for _, v in candidates:
        if len(selected) >= m:
            break
        occluded = False
        for w in selected:
            if resolver.less((v, w), (u, v)):
                occluded = True
                break
        if occluded:
            pruned.append(v)
        else:
            selected.append(v)
    if fill and len(selected) < m:
        selected.extend(pruned[: m - len(selected)])
    return selected
