"""Search over navigable graphs: numeric (bound-pruned) and comparison-only.

Two query modes share the same traversal structure:

* :func:`graph_search` — greedy layer descent plus a best-first beam at the
  base layer, every distance decision routed through the resolver's exact
  predicates.  With a :class:`~repro.core.resolver.SmartResolver` the beam's
  admission test ``d(q, v) < d_k`` is settled by bounds whenever they are
  conclusive (the unvisited frontier is pre-bounded in one ``bounds_many``
  sweep), so a warm graph answers queries with few or no oracle calls.
* :func:`comparison_search` — the same descent and beam driven purely by a
  :class:`~repro.core.oracle.ComparisonOracle`: only ordering queries, never
  a number.  On tie-free spaces it visits nodes in exactly the same order as
  the numeric search (both rank by ``(distance, id)``), which the parity
  property tests pin.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import List, Optional, Tuple

from repro.core.oracle import ComparisonOracle
from repro.graphs.model import NavigableGraph

#: Default beam width when the caller does not pass ``ef``.
DEFAULT_EF = 16


def greedy_descend(resolver, q, ep, d_ep, adj, skip=None):
    """Greedy walk toward ``q``: move to the nearest neighbour while it improves.

    Matches a vanilla scan exactly: at each step the strict-best neighbour
    (earliest-index tie-break, via ``resolver.argmin`` with an exclusive
    limit) replaces the current node; stops at a local minimum.  Returns the
    final ``(node, distance)``.
    """
    while True:
        neighbors = [v for v in adj.get(ep, ()) if v != skip]
        if not neighbors:
            return ep, d_ep
        c, d = resolver.argmin(q, neighbors, upper_limit=d_ep)
        if c is None:
            return ep, d_ep
        ep, d_ep = c, d


def search_layer(resolver, q, entries, ef, adj, skip=None):
    """Best-first beam search within one layer; the construction workhorse.

    ``entries`` is a non-empty list of already-resolved ``(distance, node)``
    seeds.  Returns up to ``ef`` nearest visited nodes as an ascending
    ``(distance, node)`` list.  Once the beam is full, a neighbour is
    admitted only when ``d(q, v) < d_ef`` (strict; ties rejected) — with a
    SmartResolver that test is first put to the bounds, after a single
    ``bounds_many`` sweep over the unvisited frontier, so conclusively-far
    neighbours cost no oracle call.  Traversal order (min-heap on
    ``(distance, node)``) and the stop rule (``d > d_ef``) are fully
    deterministic, so naive and bound-accelerated runs visit identical nodes
    and return identical results.
    """
    visited = {v for _, v in entries}
    cand: List[Tuple[float, int]] = sorted(entries)
    result: List[Tuple[float, int]] = sorted(entries)
    del result[ef:]
    while cand:
        d_c, c = heapq.heappop(cand)
        if len(result) >= ef and d_c > result[-1][0]:
            break
        frontier = [v for v in adj.get(c, ()) if v not in visited and v != skip]
        if not frontier:
            continue
        visited.update(frontier)
        if len(result) >= ef:
            # One vectorized bound sweep primes the memo for the per-pair
            # admission predicates below.
            resolver.bounds_many([(q, v) for v in frontier])
        for v in frontier:
            if len(result) >= ef and not resolver.is_less_than(q, v, result[-1][0]):
                continue
            d_v = resolver.distance(q, v)
            heapq.heappush(cand, (d_v, v))
            insort(result, (d_v, v))
            del result[ef:]
    return result


def _entry_for(graph: NavigableGraph, query: int) -> Tuple[Optional[int], int]:
    """Entry node and starting layer, rerouting when the query is the entry.

    Member queries (the query id is itself indexed) never evaluate a
    self-distance: when the entry point *is* the query, search starts from
    its first neighbour on the highest layer that has one.
    """
    ep = graph.entry_point
    if ep != query:
        return ep, graph.max_level
    for layer in range(graph.max_level, -1, -1):
        for v in graph.layers[layer].get(query, ()):
            if v != query:
                return v, layer
    return None, -1


def graph_search(
    resolver,
    graph: NavigableGraph,
    query: int,
    k: int,
    ef: Optional[int] = None,
) -> List[Tuple[float, int]]:
    """Approximate ``k`` nearest neighbours of ``query`` via the graph.

    Greedy descent through the upper layers, then an ``ef``-wide beam on the
    base layer.  Returns ascending ``(distance, id)`` pairs, never including
    ``query`` itself.  Exactness of every individual decision is inherited
    from the resolver; approximation comes only from graph navigation, so
    recall depends on the graph and ``ef``, not on the bound provider.
    """
    ef = max(k, ef if ef is not None else DEFAULT_EF)
    ep, start = _entry_for(graph, query)
    if ep is None:
        return []
    d_ep = resolver.distance(query, ep)
    for layer in range(start, 0, -1):
        ep, d_ep = greedy_descend(resolver, query, ep, d_ep, graph.layers[layer], skip=query)
    found = search_layer(resolver, query, [(d_ep, ep)], ef, graph.layers[0], skip=query)
    return found[:k]


def comparison_descend(comparison: ComparisonOracle, q, ep, adj, skip=None):
    """Greedy descent using only ordering queries.

    Scans the current node's neighbours in stored order, keeping the first
    strictly-better one seen so far (``comparison.less``), and moves while
    the scan strictly improves — the exact stepping rule of
    :func:`greedy_descend` (earliest-index tie-break, strict improvement),
    expressed purely in ordering queries.
    """
    while True:
        best = ep
        for v in adj.get(ep, ()):
            if v == skip:
                continue
            if comparison.less((q, v), (q, best)):
                best = v
        if best == ep:
            return ep
        ep = best


def comparison_search(
    comparison: ComparisonOracle,
    graph: NavigableGraph,
    query: int,
    k: int,
    ef: Optional[int] = None,
) -> List[int]:
    """Approximate ``k`` nearest neighbours using only ordering queries.

    The comparison-only oracle mode end to end: descent and beam are driven
    entirely by ``is d(q, x) < d(q, y)?`` queries, so no distance magnitude
    is ever observed.  The beam keeps an ``ef``-long rank-ordered list of
    visited nodes and repeatedly expands the best not-yet-expanded one; it
    stops when the whole beam is expanded.  Returns node ids only.
    """
    ef = max(k, ef if ef is not None else DEFAULT_EF)
    ep, start = _entry_for(graph, query)
    if ep is None:
        return []
    for layer in range(start, 0, -1):
        ep = comparison_descend(comparison, query, ep, graph.layers[layer], skip=query)
    adj = graph.layers[0]
    order: List[int] = [ep]
    visited = {ep}
    expanded = set()
    while True:
        pick = next((v for v in order if v not in expanded), None)
        if pick is None:
            break
        expanded.add(pick)
        for v in adj.get(pick, ()):
            if v in visited or v == query:
                continue
            visited.add(v)
            _rank_insert(comparison, order, query, v)
            del order[ef:]
    return order[:k]


def _rank_insert(comparison: ComparisonOracle, order: List[int], q: int, v: int) -> None:
    """Binary-insert ``v`` into rank-sorted ``order`` via ordering queries."""
    lo, hi = 0, len(order)
    while lo < hi:
        mid = (lo + hi) // 2
        if comparison.rank_less(q, v, order[mid]):
            hi = mid
        else:
            lo = mid + 1
    order.insert(lo, v)
