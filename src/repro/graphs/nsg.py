"""NSG-style flat navigable graph: kNN candidates, RNG occlusion pruning.

The Navigating Spreading-out Graph recipe, re-authored through the resolver
predicate surface: each node's candidate pool is its exact ``k`` nearest
(``knearest`` — lower-bound pruned under a SmartResolver) and the pool is
thinned with the Relative Neighborhood Graph occlusion rule — candidate
``v`` is dropped when an already-selected closer neighbour ``w`` satisfies
``d(v, w) < d(u, v)``.  That occlusion test is a pure *ordering* between two
pairs, so it goes through ``resolver.less``, where disjoint bound intervals
or the provider's ``decide_less`` joint test settle it without an oracle
call.  Selection order and tie-breaks are deterministic, so smart and naive
builds emit byte-identical graphs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graphs.model import NavigableGraph
from repro.graphs.naive import DirectResolver
from repro.graphs.select import rng_select


def _repair_connectivity(resolver, ids, adj, entry) -> int:
    """NSG's spanning-tree fix: attach nodes unreachable from the entry.

    Walks the directed graph from ``entry``; every node the walk misses (in
    ascending id order) gets one in-edge from its nearest already-reachable
    node (``knearest`` — bound-pruned under a SmartResolver), then its own
    out-edges are folded into the reachable set.  Returns the number of
    edges added.  Deterministic, so smart and naive builds repair
    identically.
    """
    reachable = set()
    stack = [entry]
    while stack:
        node = stack.pop()
        if node in reachable:
            continue
        reachable.add(node)
        stack.extend(adj[node])
    added = 0
    for u in ids:
        if u in reachable:
            continue
        anchors = sorted(reachable)
        nearest = resolver.knearest(u, anchors, 1)
        adj[nearest[0][1]].append(u)
        added += 1
        stack = [u]
        while stack:
            node = stack.pop()
            if node in reachable:
                continue
            reachable.add(node)
            stack.extend(adj[node])
    return added


def build_nsg(
    resolver,
    *,
    r: int = 8,
    k: int = 16,
    nodes: Optional[Sequence[int]] = None,
) -> NavigableGraph:
    """Build a flat RNG-pruned graph with at most ``r`` edges per node.

    ``k`` is the exact-kNN candidate pool size per node (``k >= r``); the
    entry point is the highest-in-degree node (smallest id on ties) — a
    cheap, oracle-free stand-in for NSG's navigating node.  Pass a
    bound-equipped :class:`~repro.core.resolver.SmartResolver` to prune both
    the kNN scans and the occlusion comparisons; pass a
    :class:`~repro.graphs.naive.DirectResolver` for the naive reference.
    """
    if r < 1:
        raise ValueError("nsg needs r >= 1")
    if k < r:
        raise ValueError("nsg needs k >= r")
    ids = list(nodes) if nodes is not None else list(range(resolver.oracle.n))
    if not ids:
        raise ValueError("cannot build an index over zero objects")
    adj: Dict[int, List[int]] = {}
    for u in ids:
        pool = [v for v in ids if v != u]
        candidates = resolver.knearest(u, pool, k)
        # Pure RNG occlusion pruning (no backfill): each test is an
        # ordering query the bounds/decide_less ladder answers before any
        # oracle resolution.
        adj[u] = rng_select(resolver, u, candidates, r, fill=False)
    indegree = {u: 0 for u in ids}
    for neighbors in adj.values():
        for v in neighbors:
            indegree[v] += 1
    entry = min(ids, key=lambda v: (-indegree[v], v))
    repaired = _repair_connectivity(resolver, ids, adj, entry)
    return NavigableGraph(
        kind="nsg",
        entry_point=entry,
        layers=[adj],
        params={"r": r, "k": k, "repaired_edges": repaired},
    )


def build_nsg_naive(
    oracle,
    *,
    r: int = 8,
    k: int = 16,
    nodes: Optional[Sequence[int]] = None,
) -> NavigableGraph:
    """The naive reference build: full kNN scans, direct occlusion distances."""
    return build_nsg(DirectResolver(oracle), r=r, k=k, nodes=nodes)
