"""Bound-free reference resolver for naive-baseline builds.

The builders in :mod:`repro.graphs` are written once against the
:class:`~repro.core.resolver.SmartResolver` predicate surface.  Running the
same construction with :class:`DirectResolver` — which answers every
predicate by evaluating the oracle, with no bounds, no provider, no memo —
*is* the classic greedy-insertion baseline: it charges exactly one oracle
call per distinct pair the vanilla algorithm would evaluate (the wrapped
:class:`~repro.core.oracle.DistanceOracle` caches repeats).  The smart and
naive builds therefore differ only in how decisions are paid for, which is
what makes the byte-identity + calls-saved pin meaningful.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.oracle import Pair


class DirectResolver:
    """Resolver facade where every decision is a direct oracle evaluation.

    Implements the subset of the :class:`~repro.core.resolver.SmartResolver`
    surface the graph builders and searches use (``distance``,
    ``is_less_than``, ``less``, ``compare``, ``argmin``, ``knearest``,
    ``bounds_many``), with identical exact semantics and tie-breaking but no
    bound machinery whatsoever.
    """

    def __init__(self, oracle) -> None:
        self.oracle = oracle

    def distance(self, i: int, j: int) -> float:
        """The exact distance, straight from the oracle."""
        return self.oracle(i, j)

    def is_less_than(self, i: int, j: int, threshold: float) -> bool:
        """Exact answer to ``dist(i, j) < threshold`` (one evaluation)."""
        return self.oracle(i, j) < threshold

    def less(self, a: Pair, b: Pair) -> bool:
        """Exact answer to ``dist(*a) < dist(*b)`` (two evaluations)."""
        return self.oracle(*a) < self.oracle(*b)

    def compare(self, a: Pair, b: Pair) -> int:
        """Exact sign of ``dist(*a) - dist(*b)`` (two evaluations)."""
        da = self.oracle(*a)
        db = self.oracle(*b)
        return (da > db) - (da < db)

    def bounds_many(self, pairs: Iterable[Pair]) -> None:
        """No-op: the naive reference has no bounds to prefetch."""
        return None

    def argmin(
        self,
        u: int,
        candidates: Sequence[int],
        upper_limit: float = math.inf,
    ) -> Tuple[Optional[int], float]:
        """Vanilla linear scan matching ``SmartResolver.argmin`` exactly.

        Earliest-index tie-breaking, exclusive ``upper_limit``.
        """
        best_idx: Optional[int] = None
        best_dist = upper_limit
        for idx, c in enumerate(candidates):
            d = self.oracle(u, c)
            if d < best_dist:
                best_idx = idx
                best_dist = d
        if best_idx is None:
            return None, math.inf
        return candidates[best_idx], best_dist

    def knearest(self, u: int, candidates: Iterable[int], k: int) -> List[Tuple[float, int]]:
        """Vanilla full scan matching ``SmartResolver.knearest`` exactly.

        Ascending ``(distance, id)`` order — ties broken by object id.
        """
        if k <= 0:
            return []
        pool = sorted((self.oracle(u, c), c) for c in candidates if c != u)
        return pool[:k]
