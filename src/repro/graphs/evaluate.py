"""Recall / quality evaluation helpers for built navigable graphs.

Navigable-graph search trades exactness for navigation locality, so index
quality is measured as recall against brute-force ground truth: what
fraction of the true ``k`` nearest neighbours did the graph search return?
These helpers compute that, per query and averaged, for the numeric and the
comparison-only search alike.  Ground truth is evaluated through a plain
distance function (or a resolver), with deterministic ``(distance, id)``
tie-breaking matching the searches.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.graphs.model import NavigableGraph
from repro.graphs.search import graph_search


def recall_at_k(found: Iterable[int], truth: Sequence[int], k: Optional[int] = None) -> float:
    """Fraction of the true top-``k`` ids present in ``found``.

    ``truth`` is the ground-truth ranking (ascending distance); ``k``
    defaults to its full length.  An empty truth set counts as perfect
    recall.  ``found`` may carry ids or ``(distance, id)`` pairs.
    """
    ids = [f[1] if isinstance(f, tuple) else int(f) for f in found]
    want = list(truth)[: len(truth) if k is None else k]
    if not want:
        return 1.0
    got = set(ids[: len(want)] if k is None else ids[:k])
    return sum(1 for t in want if t in got) / len(want)


def brute_force_knn(
    distance_fn: Callable[[int, int], float],
    query: int,
    candidates: Iterable[int],
    k: int,
) -> List[int]:
    """Ground-truth top-``k`` ids by exhaustive evaluation (ties by id)."""
    pool = sorted((float(distance_fn(query, c)), c) for c in candidates if c != query)
    return [c for _, c in pool[:k]]


def evaluate_recall(
    resolver,
    graph: NavigableGraph,
    queries: Sequence[int],
    k: int,
    *,
    ef: Optional[int] = None,
    distance_fn: Optional[Callable[[int, int], float]] = None,
    candidates: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Mean recall@``k`` of numeric graph search over ``queries``.

    Ground truth is brute-forced over ``candidates`` (default: the graph's
    base-layer nodes) through ``distance_fn`` when given — use the space's
    raw metric to keep ground truth off the oracle's books — else through
    ``resolver.distance``.  Returns ``{"recall", "per_query", "k", "ef"}``.
    """
    pool = list(candidates) if candidates is not None else graph.nodes()
    dfn = distance_fn if distance_fn is not None else resolver.distance
    per_query: List[float] = []
    for q in queries:
        truth = brute_force_knn(dfn, q, pool, k)
        found = graph_search(resolver, graph, q, k, ef=ef)
        per_query.append(recall_at_k(found, truth))
    mean = sum(per_query) / len(per_query) if per_query else 1.0
    return {"recall": mean, "per_query": per_query, "k": k, "ef": ef}
