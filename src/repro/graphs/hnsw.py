"""HNSW-style layered navigable-graph construction, resolver-routed.

Classic greedy insertion (Malkov & Yashunin's Hierarchical Navigable Small
World construction) with every distance-dependent decision re-authored
through the resolver predicate surface, following the paper's framework:
the greedy descent is ``argmin`` with an exclusive limit, the candidate
beam's admission test is ``is_less_than`` primed by a ``bounds_many``
frontier sweep, and degree-capped neighbour lists are re-selected with
``knearest``.  Run with a :class:`~repro.core.resolver.SmartResolver` the
build issues strong oracle calls only where bounds are inconclusive; run
with :class:`~repro.graphs.naive.DirectResolver` it *is* the naive
reference build.  Both produce byte-identical graphs (same
``edges_signature``) because every predicate is exact.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.graphs.model import NavigableGraph
from repro.graphs.naive import DirectResolver
from repro.graphs.search import greedy_descend, search_layer
from repro.graphs.select import rng_select


def assign_levels(count: int, m: int, seed: int) -> List[int]:
    """The deterministic per-node level draw shared by smart and naive builds.

    Standard HNSW geometric level assignment with multiplier ``1/ln(m)``,
    from a :class:`random.Random` seeded stream — same ``seed`` means the
    same layer structure regardless of which resolver runs the build.
    """
    rng = random.Random(seed)
    mult = 1.0 / math.log(m)
    return [int(-math.log(1.0 - rng.random()) * mult) for _ in range(count)]


def build_hnsw(
    resolver,
    *,
    m: int = 8,
    ef_construction: int = 32,
    seed: int = 0,
    nodes: Optional[Sequence[int]] = None,
) -> NavigableGraph:
    """Build an HNSW-style layered graph by greedy insertion.

    ``m`` is the per-node degree target on upper layers (base layer allows
    ``2*m``); ``ef_construction`` the candidate beam width; ``nodes`` the
    ids to index, in insertion order (defaults to the oracle's full
    universe).  Every candidate evaluation routes through ``resolver`` —
    pass a bound-equipped :class:`~repro.core.resolver.SmartResolver`
    (optionally with a weak tier or a ``stretch`` budget) to prune oracle
    calls, or a :class:`~repro.graphs.naive.DirectResolver` for the naive
    reference.  At ``stretch=1.0`` the output is byte-identical across
    resolvers.
    """
    if m < 2:
        raise ValueError("hnsw needs m >= 2")
    if ef_construction < 1:
        raise ValueError("hnsw needs ef_construction >= 1")
    ids = list(nodes) if nodes is not None else list(range(resolver.oracle.n))
    if not ids:
        raise ValueError("cannot build an index over zero objects")
    levels = assign_levels(len(ids), m, seed)
    top = levels[0]
    layers = [dict() for _ in range(top + 1)]
    for layer in range(top + 1):
        layers[layer][ids[0]] = []
    entry = ids[0]
    m_max0 = 2 * m
    for pos in range(1, len(ids)):
        u = ids[pos]
        l_u = levels[pos]
        ep = entry
        d_ep = resolver.distance(u, ep)
        for layer in range(top, l_u, -1):
            ep, d_ep = greedy_descend(resolver, u, ep, d_ep, layers[layer])
        for layer in range(min(top, l_u), -1, -1):
            found = search_layer(resolver, u, [(d_ep, ep)], ef_construction, layers[layer])
            # Diverse neighbour selection (HNSW's heuristic with
            # keep-pruned backfill) — occlusion tests are resolver.less
            # orderings, bound-decidable before any oracle call.
            chosen = rng_select(resolver, u, found, m)
            layers[layer][u] = list(chosen)
            cap = m_max0 if layer == 0 else m
            for v in chosen:
                adj_v = layers[layer][v]
                adj_v.append(u)
                if len(adj_v) > cap:
                    ranked = resolver.knearest(v, adj_v, len(adj_v))
                    layers[layer][v] = rng_select(resolver, v, ranked, cap)
            d_ep, ep = found[0]
        if l_u > top:
            for layer in range(top + 1, l_u + 1):
                layers.append({})
                layers[layer][u] = []
            top = l_u
            entry = u
    return NavigableGraph(
        kind="hnsw",
        entry_point=entry,
        layers=layers,
        params={"m": m, "ef_construction": ef_construction, "seed": seed},
    )


def build_hnsw_naive(
    oracle,
    *,
    m: int = 8,
    ef_construction: int = 32,
    seed: int = 0,
    nodes: Optional[Sequence[int]] = None,
) -> NavigableGraph:
    """The naive reference build: same algorithm, zero bound machinery.

    Runs :func:`build_hnsw` over a :class:`~repro.graphs.naive.DirectResolver`,
    so every decision pays the oracle directly — classic greedy insertion.
    ``oracle.calls`` afterwards is the naive baseline the bound-accelerated
    build is measured against.
    """
    return build_hnsw(
        DirectResolver(oracle), m=m, ef_construction=ef_construction, seed=seed, nodes=nodes
    )
