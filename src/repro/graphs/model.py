"""Navigable proximity-graph data model.

A :class:`NavigableGraph` is the artifact the :mod:`repro.graphs` builders
produce and the searches consume: per-layer ordered adjacency over object
ids plus a single entry point.  Layer 0 is the base layer holding every
indexed node; HNSW-style graphs add sparser upper layers, NSG-style graphs
are flat (one layer).  Adjacency order is load-bearing — searches visit
neighbours in stored order, so two graphs are interchangeable only when
:meth:`NavigableGraph.edges_signature` matches exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple


@dataclass
class NavigableGraph:
    """A layered navigable graph over integer object ids.

    ``layers[0]`` is the base layer containing every indexed node;
    ``layers[l]`` for ``l > 0`` are progressively sparser HNSW-style upper
    layers (absent for flat graphs).  Each layer maps a node id to its
    *ordered* out-neighbour list.  ``entry_point`` is where every search
    starts, at the top layer.
    """

    kind: str
    entry_point: int
    layers: List[Dict[int, List[int]]]
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def max_level(self) -> int:
        """Index of the top layer (0 for flat graphs)."""
        return len(self.layers) - 1

    @property
    def num_nodes(self) -> int:
        """Nodes indexed in the base layer."""
        return len(self.layers[0]) if self.layers else 0

    @property
    def num_edges(self) -> int:
        """Directed edges summed over every layer."""
        return sum(len(adj) for layer in self.layers for adj in layer.values())

    def nodes(self) -> List[int]:
        """Base-layer node ids in insertion order."""
        return list(self.layers[0]) if self.layers else []

    def neighbors(self, node: int, layer: int = 0) -> Sequence[int]:
        """Ordered out-neighbours of ``node`` at ``layer`` (empty if absent)."""
        return self.layers[layer].get(node, ())

    def edges_signature(self) -> Tuple[Tuple[int, int, Tuple[int, ...]], ...]:
        """Canonical ``(layer, node, neighbours)`` tuple for byte-identity checks.

        Two builds produced *identical* graphs — same nodes, same neighbour
        sets, same adjacency order, same layering — iff their signatures are
        equal.  This is the pin the naive-reference parity tests use.
        """
        rows = []
        for level, layer in enumerate(self.layers):
            for node in sorted(layer):
                rows.append((level, node, tuple(layer[node])))
        return tuple(rows)

    def summary(self) -> Dict[str, Any]:
        """Small JSON-friendly description (for job results and CLIs)."""
        return {
            "kind": self.kind,
            "entry_point": self.entry_point,
            "levels": len(self.layers),
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "params": dict(self.params),
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (snapshot metadata, wire payloads)."""
        return {
            "kind": self.kind,
            "entry_point": self.entry_point,
            "params": dict(self.params),
            "layers": [
                {str(node): list(adj) for node, adj in layer.items()}
                for layer in self.layers
            ],
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "NavigableGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        return cls(
            kind=str(payload["kind"]),
            entry_point=int(payload["entry_point"]),
            layers=[
                {int(node): [int(v) for v in adj] for node, adj in layer.items()}
                for layer in payload["layers"]
            ],
            params=dict(payload.get("params", {})),
        )
