"""Landmark selection and bootstrap utilities.

LAESA-style schemes pre-pay ``L`` rows of the distance matrix: every
landmark's distance to every object is resolved up front.  The same routine
doubles as the paper's "Bootstrapping Tri Scheme through Landmarks": because
resolutions flow through the shared :class:`SmartResolver`, the landmark
edges land in the partial graph, and the Tri Scheme immediately has ``L``
triangles over every unknown pair.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.core.resolver import SmartResolver


def default_num_landmarks(n: int, multiplier: float = 1.0) -> int:
    """The paper's default landmark budget, ``k = log2(n)`` (at least 1)."""
    if n <= 1:
        return 1
    return max(1, int(round(multiplier * math.log2(n))))


def select_landmarks_maxmin(
    resolver: SmartResolver,
    num_landmarks: int,
    first: int = 0,
) -> List[int]:
    """Farthest-first (max-min) landmark selection, the standard LAESA pick.

    Resolves ``(num_landmarks − 1) × n`` distances through the resolver while
    selecting: each new landmark is the object maximising the distance to its
    nearest already-chosen landmark.
    """
    n = resolver.oracle.n
    if not 1 <= num_landmarks <= n:
        raise ValueError(f"num_landmarks must be in [1, {n}]; got {num_landmarks}")
    landmarks = [first]
    nearest = np.full(n, math.inf)
    while len(landmarks) < num_landmarks:
        newest = landmarks[-1]
        for obj in range(n):
            d = resolver.distance(newest, obj)
            if d < nearest[obj]:
                nearest[obj] = d
        nearest[landmarks] = -math.inf
        candidate = int(np.argmax(nearest))
        landmarks.append(candidate)
    return landmarks


def select_landmarks_maxmin_subset(
    resolver: SmartResolver,
    candidates: Sequence[int],
    num_landmarks: int,
) -> List[int]:
    """Max-min landmark selection restricted to ``candidates``.

    The dynamic-set variant of :func:`select_landmarks_maxmin`: under
    tombstoning only the *live* ids may be probed, so the farthest-first
    sweep runs over an explicit candidate list instead of ``range(n)``.
    """
    candidates = list(candidates)
    if not 1 <= num_landmarks <= len(candidates):
        raise ValueError(
            f"num_landmarks must be in [1, {len(candidates)}]; got {num_landmarks}"
        )
    landmarks = [candidates[0]]
    nearest = {obj: math.inf for obj in candidates}
    while len(landmarks) < num_landmarks:
        newest = landmarks[-1]
        for obj in candidates:
            d = resolver.distance(newest, obj)
            if d < nearest[obj]:
                nearest[obj] = d
        for lm in landmarks:
            nearest[lm] = -math.inf
        landmarks.append(max(candidates, key=lambda o: nearest[o]))
    return landmarks


def resolve_landmark_matrix_subset(
    resolver: SmartResolver,
    landmarks: Sequence[int],
    objects: Sequence[int],
    n: int,
) -> np.ndarray:
    """Resolve an ``L × n`` matrix over only the listed live ``objects``.

    Cells of ids absent from ``objects`` (tombstoned slots) are left at
    zero; they are never read, because dead ids never enter a candidate
    set.
    """
    matrix = np.zeros((len(landmarks), n))
    for row, landmark in enumerate(landmarks):
        for obj in objects:
            matrix[row, obj] = resolver.distance(landmark, obj)
    return matrix


def resolve_landmark_matrix(
    resolver: SmartResolver,
    landmarks: Sequence[int],
) -> np.ndarray:
    """Resolve and return the ``L × n`` landmark-to-object distance matrix."""
    n = resolver.oracle.n
    matrix = np.empty((len(landmarks), n))
    for row, landmark in enumerate(landmarks):
        for obj in range(n):
            matrix[row, obj] = resolver.distance(landmark, obj)
    return matrix


def bootstrap_with_landmarks(
    resolver: SmartResolver,
    num_landmarks: int | None = None,
    multiplier: float = 1.0,
    strategy: str = "maxmin",
) -> List[int]:
    """Run the LAESA bootstrap: pick landmarks and resolve their rows.

    Returns the landmark ids.  All resolved edges are recorded in the shared
    partial graph, so *any* provider attached to the resolver benefits.
    ``strategy`` selects how landmarks are picked (see
    :data:`SELECTION_STRATEGIES`).
    """
    n = resolver.oracle.n
    if num_landmarks is None:
        num_landmarks = default_num_landmarks(n, multiplier)
    num_landmarks = min(num_landmarks, n)
    landmarks = select_landmarks(resolver, num_landmarks, strategy)
    resolve_landmark_matrix(resolver, landmarks)
    return landmarks


def select_landmarks_random(
    resolver: SmartResolver,
    num_landmarks: int,
    seed: int = 0,
) -> List[int]:
    """Uniform-random landmark selection (no selection-time oracle calls).

    The cheapest strategy: zero calls spent choosing, at the price of
    landmarks that may cluster together and cover the space poorly.
    """
    n = resolver.oracle.n
    if not 1 <= num_landmarks <= n:
        raise ValueError(f"num_landmarks must be in [1, {n}]; got {num_landmarks}")
    rng = np.random.default_rng(seed)
    return sorted(int(x) for x in rng.choice(n, size=num_landmarks, replace=False))


def select_landmarks_maxsum(
    resolver: SmartResolver,
    num_landmarks: int,
    first: int = 0,
) -> List[int]:
    """Max-sum selection: each landmark maximises total distance to the rest.

    A greedier spread criterion than max-min; tends to pick boundary
    objects.  Costs the same selection calls as max-min.
    """
    n = resolver.oracle.n
    if not 1 <= num_landmarks <= n:
        raise ValueError(f"num_landmarks must be in [1, {n}]; got {num_landmarks}")
    landmarks = [first]
    total = np.zeros(n)
    while len(landmarks) < num_landmarks:
        newest = landmarks[-1]
        for obj in range(n):
            total[obj] += resolver.distance(newest, obj)
        total[landmarks] = -math.inf
        candidate = int(np.argmax(total))
        landmarks.append(candidate)
    return landmarks


#: Selection strategies accepted by :func:`bootstrap_with_landmarks`.
SELECTION_STRATEGIES = ("maxmin", "maxsum", "random")


def select_landmarks(
    resolver: SmartResolver,
    num_landmarks: int,
    strategy: str = "maxmin",
    seed: int = 0,
) -> List[int]:
    """Dispatch to a landmark-selection strategy by name."""
    if strategy == "maxmin":
        return select_landmarks_maxmin(resolver, num_landmarks)
    if strategy == "maxsum":
        return select_landmarks_maxsum(resolver, num_landmarks)
    if strategy == "random":
        return select_landmarks_random(resolver, num_landmarks, seed)
    raise ValueError(
        f"unknown strategy {strategy!r}; choose from {SELECTION_STRATEGIES}"
    )
