"""DFT — the paper's Direct Feasibility Test (Contribution 1).

Models every known distance, every range constraint, and every triangle
inequality over the object set as a system of linear inequalities
``A·x <= b`` over the unknown distances.  A comparison such as
``dist(a) < dist(b)`` is then decided by testing the *reversed* constraint
for infeasibility: if no assignment of the unknown distances satisfies
``dist(a) >= dist(b)`` together with all metric constraints, the strict
inequality is certain and both oracle calls are saved.

This is the tightest decision procedure possible from the known distances —
strictly stronger than any lower/upper-bound scheme because it reasons about
the *joint* feasibility of two unknowns — and also by far the most
expensive: the system has one variable per unknown pair and ``3·C(n,3)``
triangle rows, so it is only practical for graphs with a few hundred edges
(paper §5.3).  The paper used CPLEX; we use SciPy's HiGHS ``linprog``, which
answers the same feasibility questions.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.exceptions import ConfigurationError, SolverError
from repro.core.oracle import canonical_pair
from repro.core.partial_graph import PartialDistanceGraph

Pair = Tuple[int, int]

#: Hard ceiling on object count — beyond this the LP explodes (3·C(n,3) rows).
DEFAULT_MAX_OBJECTS = 64

#: linprog status code for "infeasible".
_INFEASIBLE = 2


class DirectFeasibilityTest(BaseBoundProvider):
    """LP-feasibility bound provider and comparison decider.

    Implements both the :class:`BoundProvider` protocol (``bounds`` solves
    two LPs, minimising and maximising the pair's variable) and overrides
    :meth:`BoundProvider.decide_less` — the formal joint-comparison method
    the :class:`SmartResolver` consults before resolving — with an LP over
    both pairs at once.  The latter is where DFT beats every bound scheme.
    """

    name = "DFT"

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = 1.0,
        max_objects: int = DEFAULT_MAX_OBJECTS,
    ) -> None:
        if not math.isfinite(max_distance):
            raise ConfigurationError(
                "DFT needs a finite max_distance (the paper normalises to [0, 1])"
            )
        if graph.n > max_objects:
            raise ConfigurationError(
                f"DFT is limited to {max_objects} objects (got {graph.n}); "
                "it is not meant for large graphs — use SPLUB or TriScheme"
            )
        super().__init__(graph, max_distance)
        self._dirty = True
        self._var_index: Dict[Pair, int] = {}
        self._a_ub: csr_matrix | None = None
        self._b_ub: np.ndarray | None = None
        self.lp_solves = 0

    # -- system construction ---------------------------------------------

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        self._dirty = True

    def _rebuild(self) -> None:
        """(Re)build the triangle-inequality system over the unknown pairs."""
        n = self.graph.n
        self._var_index = {
            pair: idx for idx, pair in enumerate(self.graph.unknown_pairs())
        }
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        rhs: list[float] = []
        row = 0
        get = self.graph.get
        var = self._var_index

        def emit(terms: list[tuple[Pair, float]], bound: float) -> int:
            """Append one inequality ``sum coeff·x <= bound`` (knowns folded in)."""
            nonlocal row
            constant = 0.0
            entries: list[tuple[int, float]] = []
            for pair, coeff in terms:
                known = get(*pair)
                if known is not None:
                    constant += coeff * known
                else:
                    entries.append((var[pair], coeff))
            if not entries:
                return row
            for col, coeff in entries:
                rows.append(row)
                cols.append(col)
                data.append(coeff)
            rhs.append(bound - constant)
            row += 1
            return row

        for u in range(n):
            for v in range(u + 1, n):
                for w in range(v + 1, n):
                    e1 = (u, v)
                    e2 = (u, w)
                    e3 = (v, w)
                    if get(*e1) is not None and get(*e2) is not None and get(*e3) is not None:
                        continue
                    emit([(e1, 1.0), (e2, -1.0), (e3, -1.0)], 0.0)
                    emit([(e2, 1.0), (e1, -1.0), (e3, -1.0)], 0.0)
                    emit([(e3, 1.0), (e1, -1.0), (e2, -1.0)], 0.0)

        num_vars = len(self._var_index)
        self._a_ub = csr_matrix(
            (data, (rows, cols)), shape=(row, max(num_vars, 1))
        )
        self._b_ub = np.asarray(rhs, dtype=np.float64)
        self._dirty = False

    def _ensure_system(self) -> None:
        if self._dirty:
            self._rebuild()

    @property
    def num_constraints(self) -> int:
        """Triangle rows currently in the system (range rows are var bounds)."""
        self._ensure_system()
        return int(self._a_ub.shape[0])

    @property
    def num_variables(self) -> int:
        """Unknown pairs currently modelled as LP variables."""
        self._ensure_system()
        return len(self._var_index)

    # -- LP plumbing ------------------------------------------------------------

    def _solve(
        self,
        objective: np.ndarray | None,
        extra_rows: list[tuple[Dict[int, float], float]] | None = None,
    ):
        """Run linprog with the triangle system plus optional extra rows."""
        self._ensure_system()
        num_vars = max(len(self._var_index), 1)
        a_ub = self._a_ub
        b_ub = self._b_ub
        if extra_rows:
            extra_data, extra_rows_idx, extra_cols, extra_rhs = [], [], [], []
            for r, (coeffs, bound) in enumerate(extra_rows):
                for col, coeff in coeffs.items():
                    extra_rows_idx.append(r)
                    extra_cols.append(col)
                    extra_data.append(coeff)
                extra_rhs.append(bound)
            extra = csr_matrix(
                (extra_data, (extra_rows_idx, extra_cols)),
                shape=(len(extra_rows), num_vars),
            )
            from scipy.sparse import vstack

            a_ub = vstack([a_ub, extra], format="csr")
            b_ub = np.concatenate([b_ub, np.asarray(extra_rhs)])
        c = objective if objective is not None else np.zeros(num_vars)
        self.lp_solves += 1
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            bounds=(0.0, self.max_distance),
            method="highs",
        )
        if result.status not in (0, _INFEASIBLE, 3):
            raise SolverError(f"linprog failed with status {result.status}: {result.message}")
        return result

    # -- protocol: bounds -----------------------------------------------------

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        self._ensure_system()
        idx = self._var_index[canonical_pair(i, j)]
        num_vars = len(self._var_index)
        objective = np.zeros(num_vars)
        objective[idx] = 1.0
        low = self._solve(objective)
        high = self._solve(-objective)
        if low.status != 0 or high.status != 0:
            # Inconsistent system can only arise from a non-metric oracle.
            raise SolverError("triangle system is infeasible — oracle is not a metric")
        lb = max(0.0, float(low.fun))
        ub = min(self.max_distance, float(-high.fun))
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    # -- decider hook (used by SmartResolver) -------------------------------------

    def decide_less(self, a: Pair, b: Pair) -> Optional[bool]:
        """Certain answer to ``dist(*a) < dist(*b)`` or None when undecidable.

        * infeasibility of ``x_a >= x_b`` proves ``dist(a) < dist(b)``;
        * infeasibility of ``x_a <= x_b`` proves ``dist(a) > dist(b)``.
        """
        self._ensure_system()
        da = self.graph.get(*a)
        db = self.graph.get(*b)
        if da is not None and db is not None:
            return da < db
        terms_a = self._terms(a)
        terms_b = self._terms(b)

        # Row for "x_b - x_a <= 0"  (i.e. x_a >= x_b feasible?)
        coeffs_ge, rhs_ge = self._combine(terms_b, terms_a)
        if self._infeasible(coeffs_ge, rhs_ge):
            return True
        # Row for "x_a - x_b <= 0"  (i.e. x_a <= x_b feasible?)
        coeffs_le, rhs_le = self._combine(terms_a, terms_b)
        if self._infeasible(coeffs_le, rhs_le):
            return False
        return None

    def _terms(self, pair: Pair) -> tuple[Dict[int, float], float]:
        """Represent a pair's distance as (variable coefficients, constant)."""
        known = self.graph.get(*pair)
        if known is not None:
            return {}, known
        return {self._var_index[canonical_pair(*pair)]: 1.0}, 0.0

    @staticmethod
    def _combine(
        plus: tuple[Dict[int, float], float],
        minus: tuple[Dict[int, float], float],
    ) -> tuple[Dict[int, float], float]:
        """Build the row ``plus − minus <= 0`` → (coeffs, rhs)."""
        coeffs: Dict[int, float] = dict(plus[0])
        for col, coeff in minus[0].items():
            coeffs[col] = coeffs.get(col, 0.0) - coeff
        rhs = minus[1] - plus[1]
        return coeffs, rhs

    def _infeasible(self, coeffs: Dict[int, float], rhs: float) -> bool:
        if not coeffs:
            # Constant row: infeasible iff the constant violates the bound.
            return 0.0 > rhs
        result = self._solve(None, extra_rows=[(coeffs, rhs)])
        return result.status == _INFEASIBLE
