"""Landmark-tree distance sketches — sublinear-memory bounds with stretch.

Grounded in *Approximating Approximate Distance Oracles* (arXiv 1612.05623)
and Ramsey-partition sketches (arXiv cs/0511084): instead of O(n²) bound
state, keep ``L`` landmark *trees* — one distance row per landmark over all
``n`` objects, ``O(n·L)`` memory total — and bound any pair through them:

    LB(i, j) = max_l |D[l, i] − D[l, j]|        (exact rows only)
    UB(i, j) = min_l  D[l, i] + D[l, j]

Rows come in two flavours:

* **exact** — resolved through the oracle at :meth:`SketchBoundProvider.
  bootstrap` (LAESA-style, maxmin landmark selection).  Both bounds are
  valid and the sketch is a drop-in exact provider.
* **tree** — :meth:`SketchBoundProvider.from_graph` runs Dijkstra over the
  *known* edges from each landmark (:func:`repro.bounds.kernels.sssp`), at
  zero oracle cost.  Tree rows are upper bounds on the true landmark
  distances, so only the ``UB`` side is sound; ``LB`` stays trivial.

Either way the sweep itself runs through the compiled
:func:`repro.bounds.kernels.laesa_sweep` kernel.  The provider is the
natural companion of the resolver's ``stretch`` budget: tight sketch
intervals let :class:`~repro.core.resolver.SmartResolver` answer
``ub <= stretch · lb`` pairs without any oracle call.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.bounds import kernels
from repro.bounds.landmarks import (
    default_num_landmarks,
    resolve_landmark_matrix,
    resolve_landmark_matrix_subset,
    select_landmarks_maxmin,
    select_landmarks_maxmin_subset,
)
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


class SketchBoundProvider(BaseBoundProvider):
    """Bound provider over ``L`` landmark distance rows (``O(n·L)`` memory).

    Construct, then either :meth:`bootstrap` exact rows through a resolver
    (both bounds valid) or :meth:`refresh_from_graph` tree rows from the
    known edges (upper bounds only, zero oracle calls).
    """

    name = "Sketch"
    vectorized_bounds = True

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        num_landmarks: int | None = None,
    ) -> None:
        super().__init__(graph, max_distance)
        self._requested_landmarks = num_landmarks
        self.landmarks: List[int] = []
        self._landmark_row: dict[int, int] = {}
        self._matrix: np.ndarray | None = None
        #: True when every matrix entry is an oracle-exact distance — the
        #: precondition for serving lower bounds from the sketch.
        self.exact_rows = True
        #: Opt-in (dynamic mode): tree sketches apply a one-step relaxation
        #: per resolved edge and mark only genuinely improved rows dirty, so
        #: :meth:`refresh_from_graph` can recompute a delta instead of the
        #: whole O(n·L) sketch.
        self.track_dirty = False
        self._dirty_rows: set[int] = set()
        #: Tree rows actually recomputed by :meth:`refresh_from_graph`.
        self.rows_recomputed = 0
        #: Fraction of the live set that may churn before landmark
        #: re-selection, and the running churn tally.
        self.drift_threshold = 0.5
        self._drift = 0
        self._bootstrap_count = 0
        self.landmark_rows_dropped = 0
        self.landmark_cols_refilled = 0
        self.landmark_reselections = 0

    # -- construction -----------------------------------------------------

    def bootstrap(self, resolver, multiplier: float = 1.0) -> int:
        """Select landmarks and resolve exact sketch rows through the oracle.

        Returns the number of oracle calls charged for the bootstrap.
        """
        before = resolver.oracle.calls
        n = resolver.oracle.n
        count = self._requested_landmarks or default_num_landmarks(n, multiplier)
        count = min(count, n)
        self.landmarks = select_landmarks_maxmin(resolver, count)
        self._matrix = resolve_landmark_matrix(resolver, self.landmarks)
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = True
        self._bootstrap_count = len(self.landmarks)
        self._drift = 0
        return resolver.oracle.calls - before

    def adopt(self, landmarks: Sequence[int], matrix: np.ndarray) -> None:
        """Install externally resolved exact rows (shared bootstraps)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != len(landmarks):
            raise ValueError("matrix row count must equal the number of landmarks")
        self.landmarks = list(landmarks)
        self._matrix = matrix
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = True

    @classmethod
    def from_graph(
        cls,
        graph: PartialDistanceGraph,
        landmarks: Sequence[int],
        max_distance: float = math.inf,
    ) -> "SketchBoundProvider":
        """Build a tree sketch from the already-resolved edges, oracle-free.

        Each row is the Dijkstra tree from one landmark over the known
        edges — an upper bound on the true landmark distance, so the sketch
        serves only upper bounds (``exact_rows`` is False).
        """
        provider = cls(graph, max_distance, num_landmarks=len(landmarks))
        provider.refresh_from_graph(landmarks)
        return provider

    def refresh_from_graph(
        self,
        landmarks: Sequence[int] | None = None,
        dirty_only: bool = False,
    ) -> int:
        """(Re)compute tree rows from the current known-edge graph.

        With ``dirty_only=True`` (and :attr:`track_dirty` enabled) only the
        rows whose one-step relaxation improved since the last refresh are
        recomputed — the delta-aware fast path.  Untouched rows are served
        as they stand, which is sound: a tree row is an upper bound on the
        landmark's distances, and skipping a recompute can only leave it
        where it was, never loosen it below a true distance.  Returns the
        number of rows recomputed.
        """
        if landmarks is not None:
            self.landmarks = list(landmarks)
            dirty_only = False  # a new landmark set has no incremental state
        if not self.landmarks:
            raise ValueError("a tree sketch needs at least one landmark")
        graph = self.graph
        if dirty_only and self._matrix is not None and not self.exact_rows:
            targets = sorted(
                row for row in self._dirty_rows if row < len(self.landmarks)
            )
            if not targets:
                return 0
            indptr, indices, weights = graph.csr_arrays()
            if self._matrix.shape[1] < graph.n:
                pad = np.full(
                    (self._matrix.shape[0], graph.n - self._matrix.shape[1]), math.inf
                )
                self._matrix = np.hstack([self._matrix, pad])
            for row in targets:
                self._matrix[row] = kernels.sssp(
                    indptr, indices, weights, graph.n, self.landmarks[row]
                )
            self._dirty_rows.clear()
            self.rows_recomputed += len(targets)
            return len(targets)
        indptr, indices, weights = graph.csr_arrays()
        rows = [
            kernels.sssp(indptr, indices, weights, graph.n, lm)
            for lm in self.landmarks
        ]
        self._matrix = np.vstack(rows)
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = False
        self._dirty_rows.clear()
        self.rows_recomputed += len(rows)
        return len(rows)

    def apply_mutations(self, inserted, removed, resolver=None) -> dict:
        """Incrementally maintain the sketch across a mutation batch.

        Exact sketches behave like LAESA: dead landmark rows are dropped,
        inserted ids get their columns resolved immediately through
        ``resolver``, and heavy drift triggers landmark re-selection over
        the live set.  Tree sketches are cheaper: mutated columns are
        masked to ``inf`` (a trivially sound upper bound) and new columns
        are padded with ``inf`` — resolved edges repopulate them through
        :meth:`notify_resolved`, and :meth:`refresh_from_graph` tightens
        dirty rows on demand.
        """
        counters = {
            "sketch_rows_dropped": 0,
            "sketch_cols_refilled": 0,
            "sketch_reselections": 0,
        }
        if self._matrix is None:
            return counters
        inserted = list(inserted)
        removed = set(removed)
        if self.exact_rows and inserted and resolver is None:
            raise ValueError(
                "exact-sketch maintenance needs a resolver to refill landmark "
                "columns for inserted ids"
            )
        dead_landmarks = [lm for lm in self.landmarks if lm in removed]
        if dead_landmarks:
            keep = [r for r, lm in enumerate(self.landmarks) if lm not in removed]
            self.landmarks = [self.landmarks[r] for r in keep]
            self._matrix = self._matrix[keep].copy() if keep else None
            self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
            self._dirty_rows.clear()
            counters["sketch_rows_dropped"] = len(dead_landmarks)
            self.landmark_rows_dropped += len(dead_landmarks)
        self._drift += len(inserted) + len(removed)
        if self._matrix is not None:
            n = self.graph.n
            if self._matrix.shape[1] < n:
                fill = 0.0 if self.exact_rows else math.inf
                pad = np.full((self._matrix.shape[0], n - self._matrix.shape[1]), fill)
                self._matrix = np.hstack([self._matrix, pad])
            if self.exact_rows:
                for obj in inserted:
                    for row, lm in enumerate(self.landmarks):
                        self._matrix[row, obj] = resolver.distance(lm, obj)
                    counters["sketch_cols_refilled"] += 1
                self.landmark_cols_refilled += len(inserted)
            else:
                # Recycled ids must not inherit the dead incarnation's paths.
                for obj in set(inserted) | removed:
                    if obj < self._matrix.shape[1]:
                        self._matrix[:, obj] = math.inf
        if self.exact_rows and resolver is not None and self._needs_reselection():
            alive = self.graph.alive_ids()
            count = min(
                self._bootstrap_count or default_num_landmarks(len(alive)), len(alive)
            )
            landmarks = select_landmarks_maxmin_subset(resolver, alive, max(1, count))
            self._matrix = resolve_landmark_matrix_subset(
                resolver, landmarks, alive, self.graph.n
            )
            self.landmarks = landmarks
            self._landmark_row = {lm: row for row, lm in enumerate(landmarks)}
            self._bootstrap_count = len(landmarks)
            self._drift = 0
            counters["sketch_reselections"] = 1
            self.landmark_reselections += 1
        return counters

    def _needs_reselection(self) -> bool:
        alive = self.graph.num_alive
        if alive < 2:
            return False
        if self._matrix is None or not self.landmarks:
            return True
        if self._bootstrap_count and len(self.landmarks) < max(1, self._bootstrap_count // 2):
            return True
        return self._drift > self.drift_threshold * alive

    @property
    def memory_entries(self) -> int:
        """Sketch state size in matrix entries — ``L × n``, never O(n²)."""
        return 0 if self._matrix is None else int(self._matrix.size)

    # -- protocol ----------------------------------------------------------

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        if self._matrix is None or not self.landmarks:
            return self.trivial_bounds(i, j)
        col_i = self._matrix[:, i]
        col_j = self._matrix[:, j]
        ub = min(float(np.min(col_i + col_j)), self.max_distance)
        lb = float(np.max(np.abs(col_i - col_j))) if self.exact_rows else 0.0
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Batch query through the compiled landmark-sweep kernel."""
        pairs = list(pairs)
        if self._matrix is None or not self.landmarks:
            return [self.bounds(i, j) for i, j in pairs]
        out: List[Bounds | None] = [None] * len(pairs)
        todo: List[int] = []
        ii: List[int] = []
        jj: List[int] = []
        for idx, (i, j) in enumerate(pairs):
            if i == j:
                out[idx] = Bounds(0.0, 0.0)
                continue
            known = self.graph.get(i, j)
            if known is not None:
                out[idx] = Bounds(known, known)
                continue
            todo.append(idx)
            ii.append(i)
            jj.append(j)
        if todo:
            lowers, uppers = kernels.laesa_sweep(
                self._matrix,
                np.asarray(ii, dtype=np.int64),
                np.asarray(jj, dtype=np.int64),
            )
            cap = self.max_distance
            exact = self.exact_rows
            for pos, idx in enumerate(todo):
                lb = float(lowers[pos]) if exact else 0.0
                ub = min(float(uppers[pos]), cap)
                if lb > ub:
                    lb = ub
                out[idx] = Bounds(lb, ub)
        return out

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Tighten sketch rows when a landmark's distance was resolved.

        Exact sketches overwrite the cell (the resolved value *is* the
        row's entry); tree sketches only improve — a resolved distance can
        only shorten the landmark's shortest path, never lengthen it.
        """
        if self._matrix is None:
            return
        row = self._landmark_row.get(i)
        if row is not None and (self.exact_rows or distance < self._matrix[row, j]):
            self._matrix[row, j] = distance
        row = self._landmark_row.get(j)
        if row is not None and (self.exact_rows or distance < self._matrix[row, i]):
            self._matrix[row, i] = distance
        if self.track_dirty and not self.exact_rows:
            # One-step relaxation across *all* tree rows: the new edge may
            # shorten any landmark's path through either endpoint.  Rows it
            # genuinely improved are marked dirty — they (and only they) may
            # be tightened further by a full Dijkstra at the next refresh.
            col_i = self._matrix[:, i].copy()
            col_j = self._matrix[:, j].copy()
            better_j = col_i + distance < col_j
            better_i = col_j + distance < col_i
            if better_j.any():
                self._matrix[better_j, j] = col_i[better_j] + distance
            if better_i.any():
                self._matrix[better_i, i] = col_j[better_i] + distance
            for row in np.nonzero(better_i | better_j)[0].tolist():
                self._dirty_rows.add(int(row))
