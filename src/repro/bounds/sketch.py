"""Landmark-tree distance sketches — sublinear-memory bounds with stretch.

Grounded in *Approximating Approximate Distance Oracles* (arXiv 1612.05623)
and Ramsey-partition sketches (arXiv cs/0511084): instead of O(n²) bound
state, keep ``L`` landmark *trees* — one distance row per landmark over all
``n`` objects, ``O(n·L)`` memory total — and bound any pair through them:

    LB(i, j) = max_l |D[l, i] − D[l, j]|        (exact rows only)
    UB(i, j) = min_l  D[l, i] + D[l, j]

Rows come in two flavours:

* **exact** — resolved through the oracle at :meth:`SketchBoundProvider.
  bootstrap` (LAESA-style, maxmin landmark selection).  Both bounds are
  valid and the sketch is a drop-in exact provider.
* **tree** — :meth:`SketchBoundProvider.from_graph` runs Dijkstra over the
  *known* edges from each landmark (:func:`repro.bounds.kernels.sssp`), at
  zero oracle cost.  Tree rows are upper bounds on the true landmark
  distances, so only the ``UB`` side is sound; ``LB`` stays trivial.

Either way the sweep itself runs through the compiled
:func:`repro.bounds.kernels.laesa_sweep` kernel.  The provider is the
natural companion of the resolver's ``stretch`` budget: tight sketch
intervals let :class:`~repro.core.resolver.SmartResolver` answer
``ub <= stretch · lb`` pairs without any oracle call.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.bounds import kernels
from repro.bounds.landmarks import (
    default_num_landmarks,
    resolve_landmark_matrix,
    select_landmarks_maxmin,
)
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


class SketchBoundProvider(BaseBoundProvider):
    """Bound provider over ``L`` landmark distance rows (``O(n·L)`` memory).

    Construct, then either :meth:`bootstrap` exact rows through a resolver
    (both bounds valid) or :meth:`refresh_from_graph` tree rows from the
    known edges (upper bounds only, zero oracle calls).
    """

    name = "Sketch"
    vectorized_bounds = True

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        num_landmarks: int | None = None,
    ) -> None:
        super().__init__(graph, max_distance)
        self._requested_landmarks = num_landmarks
        self.landmarks: List[int] = []
        self._landmark_row: dict[int, int] = {}
        self._matrix: np.ndarray | None = None
        #: True when every matrix entry is an oracle-exact distance — the
        #: precondition for serving lower bounds from the sketch.
        self.exact_rows = True

    # -- construction -----------------------------------------------------

    def bootstrap(self, resolver, multiplier: float = 1.0) -> int:
        """Select landmarks and resolve exact sketch rows through the oracle.

        Returns the number of oracle calls charged for the bootstrap.
        """
        before = resolver.oracle.calls
        n = resolver.oracle.n
        count = self._requested_landmarks or default_num_landmarks(n, multiplier)
        count = min(count, n)
        self.landmarks = select_landmarks_maxmin(resolver, count)
        self._matrix = resolve_landmark_matrix(resolver, self.landmarks)
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = True
        return resolver.oracle.calls - before

    def adopt(self, landmarks: Sequence[int], matrix: np.ndarray) -> None:
        """Install externally resolved exact rows (shared bootstraps)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != len(landmarks):
            raise ValueError("matrix row count must equal the number of landmarks")
        self.landmarks = list(landmarks)
        self._matrix = matrix
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = True

    @classmethod
    def from_graph(
        cls,
        graph: PartialDistanceGraph,
        landmarks: Sequence[int],
        max_distance: float = math.inf,
    ) -> "SketchBoundProvider":
        """Build a tree sketch from the already-resolved edges, oracle-free.

        Each row is the Dijkstra tree from one landmark over the known
        edges — an upper bound on the true landmark distance, so the sketch
        serves only upper bounds (``exact_rows`` is False).
        """
        provider = cls(graph, max_distance, num_landmarks=len(landmarks))
        provider.refresh_from_graph(landmarks)
        return provider

    def refresh_from_graph(self, landmarks: Sequence[int] | None = None) -> None:
        """(Re)compute tree rows from the current known-edge graph."""
        if landmarks is not None:
            self.landmarks = list(landmarks)
        if not self.landmarks:
            raise ValueError("a tree sketch needs at least one landmark")
        graph = self.graph
        indptr, indices, weights = graph.csr_arrays()
        rows = [
            kernels.sssp(indptr, indices, weights, graph.n, lm)
            for lm in self.landmarks
        ]
        self._matrix = np.vstack(rows)
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self.exact_rows = False

    @property
    def memory_entries(self) -> int:
        """Sketch state size in matrix entries — ``L × n``, never O(n²)."""
        return 0 if self._matrix is None else int(self._matrix.size)

    # -- protocol ----------------------------------------------------------

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        if self._matrix is None or not self.landmarks:
            return self.trivial_bounds(i, j)
        col_i = self._matrix[:, i]
        col_j = self._matrix[:, j]
        ub = min(float(np.min(col_i + col_j)), self.max_distance)
        lb = float(np.max(np.abs(col_i - col_j))) if self.exact_rows else 0.0
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Batch query through the compiled landmark-sweep kernel."""
        pairs = list(pairs)
        if self._matrix is None or not self.landmarks:
            return [self.bounds(i, j) for i, j in pairs]
        out: List[Bounds | None] = [None] * len(pairs)
        todo: List[int] = []
        ii: List[int] = []
        jj: List[int] = []
        for idx, (i, j) in enumerate(pairs):
            if i == j:
                out[idx] = Bounds(0.0, 0.0)
                continue
            known = self.graph.get(i, j)
            if known is not None:
                out[idx] = Bounds(known, known)
                continue
            todo.append(idx)
            ii.append(i)
            jj.append(j)
        if todo:
            lowers, uppers = kernels.laesa_sweep(
                self._matrix,
                np.asarray(ii, dtype=np.int64),
                np.asarray(jj, dtype=np.int64),
            )
            cap = self.max_distance
            exact = self.exact_rows
            for pos, idx in enumerate(todo):
                lb = float(lowers[pos]) if exact else 0.0
                ub = min(float(uppers[pos]), cap)
                if lb > ub:
                    lb = ub
                out[idx] = Bounds(lb, ub)
        return out

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Tighten sketch rows when a landmark's distance was resolved.

        Exact sketches overwrite the cell (the resolved value *is* the
        row's entry); tree sketches only improve — a resolved distance can
        only shorten the landmark's shortest path, never lengthen it.
        """
        if self._matrix is None:
            return
        row = self._landmark_row.get(i)
        if row is not None and (self.exact_rows or distance < self._matrix[row, j]):
            self._matrix[row, j] = distance
        row = self._landmark_row.get(j)
        if row is not None and (self.exact_rows or distance < self._matrix[row, i]):
            self._matrix[row, i] = distance
