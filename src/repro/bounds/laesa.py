"""LAESA baseline — Micó, Oncina & Vidal (1994).

Keeps an ``L × n`` matrix ``D`` of resolved landmark-to-object distances and
bounds any pair through the landmarks:

    LB(i, j) = max_l |D[l, i] − D[l, j]|
    UB(i, j) = min_l  D[l, i] + D[l, j]

Queries are ``O(L)`` (vectorised); updates only matter when the resolved
edge touches a landmark.  The bounds are fast but loose — the scheme only
ever "sees" paths of length 2 through the fixed landmark set, whereas the
Tri Scheme exploits *every* triangle accumulated so far.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.bounds import kernels
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.bounds.landmarks import (
    default_num_landmarks,
    resolve_landmark_matrix,
    resolve_landmark_matrix_subset,
    select_landmarks_maxmin,
    select_landmarks_maxmin_subset,
)


class Laesa(BaseBoundProvider):
    """Landmark-matrix bound provider.

    Construct, then call :meth:`bootstrap` with the resolver to pick
    landmarks and pre-pay their distance rows.
    """

    name = "LAESA"
    vectorized_bounds = True

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        num_landmarks: int | None = None,
    ) -> None:
        super().__init__(graph, max_distance)
        self._requested_landmarks = num_landmarks
        self.landmarks: List[int] = []
        self._landmark_row: dict[int, int] = {}
        self._matrix: np.ndarray | None = None
        #: Fraction of the live set that may churn before landmarks are
        #: re-selected from scratch (drift threshold).
        self.drift_threshold = 0.5
        self._drift = 0
        self._bootstrap_count = 0
        #: Mutation-maintenance tallies.
        self.landmark_rows_dropped = 0
        self.landmark_cols_refilled = 0
        self.landmark_reselections = 0

    # -- construction -----------------------------------------------------

    def bootstrap(self, resolver: SmartResolver, multiplier: float = 1.0) -> int:
        """Select landmarks and resolve the landmark matrix.

        Returns the number of oracle calls charged for the bootstrap.
        """
        before = resolver.oracle.calls
        n = resolver.oracle.n
        count = self._requested_landmarks or default_num_landmarks(n, multiplier)
        count = min(count, n)
        self.landmarks = select_landmarks_maxmin(resolver, count)
        self._matrix = resolve_landmark_matrix(resolver, self.landmarks)
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
        self._bootstrap_count = len(self.landmarks)
        self._drift = 0
        return resolver.oracle.calls - before

    def adopt(self, landmarks: Sequence[int], matrix: np.ndarray) -> None:
        """Install an externally resolved landmark matrix (shared bootstraps)."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape[0] != len(landmarks):
            raise ValueError("matrix row count must equal the number of landmarks")
        self.landmarks = list(landmarks)
        self._matrix = matrix
        self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}

    # -- mutation maintenance ----------------------------------------------

    def apply_mutations(self, inserted, removed, resolver=None) -> dict:
        """Incrementally maintain the landmark matrix across a mutation batch.

        Rows of removed landmarks are dropped; every inserted (possibly
        recycled) id gets its column resolved immediately through
        ``resolver`` — the incremental landmark assignment, ``L`` strong
        calls per insert — so a stale column is never served.  Columns of
        removed non-landmark ids are left in place: dead ids never appear
        in a candidate set, so those cells are never read.  When cumulative
        churn exceeds :attr:`drift_threshold` of the live set (or more than
        half the landmarks died) the whole landmark set is re-selected.
        """
        counters = {
            "landmark_rows_dropped": 0,
            "landmark_cols_refilled": 0,
            "landmark_reselections": 0,
        }
        if self._matrix is None:
            return counters
        inserted = list(inserted)
        removed = set(removed)
        if inserted and resolver is None:
            raise ValueError(
                "LAESA maintenance needs a resolver to refill landmark "
                "columns for inserted ids (an exact matrix must never serve "
                "a stale or empty column)"
            )
        dead_landmarks = [lm for lm in self.landmarks if lm in removed]
        if dead_landmarks:
            keep = [r for r, lm in enumerate(self.landmarks) if lm not in removed]
            self.landmarks = [self.landmarks[r] for r in keep]
            self._matrix = self._matrix[keep].copy() if keep else None
            self._landmark_row = {lm: row for row, lm in enumerate(self.landmarks)}
            counters["landmark_rows_dropped"] = len(dead_landmarks)
            self.landmark_rows_dropped += len(dead_landmarks)
        self._drift += len(inserted) + len(removed)
        if self._matrix is not None:
            n = self.graph.n
            if self._matrix.shape[1] < n:
                pad = np.zeros((self._matrix.shape[0], n - self._matrix.shape[1]))
                self._matrix = np.hstack([self._matrix, pad])
            if resolver is not None and inserted:
                for obj in inserted:
                    for row, lm in enumerate(self.landmarks):
                        self._matrix[row, obj] = resolver.distance(lm, obj)
                    counters["landmark_cols_refilled"] += 1
                self.landmark_cols_refilled += len(inserted)
        if resolver is not None and self._needs_reselection():
            self._reselect(resolver)
            counters["landmark_reselections"] = 1
            self.landmark_reselections += 1
        return counters

    def _needs_reselection(self) -> bool:
        alive = self.graph.num_alive
        if alive < 2:
            return False
        if self._matrix is None or not self.landmarks:
            return True
        if self._bootstrap_count and len(self.landmarks) < max(1, self._bootstrap_count // 2):
            return True
        return self._drift > self.drift_threshold * alive

    def _reselect(self, resolver: SmartResolver) -> None:
        """Re-pick landmarks maxmin over the *live* ids and refill their rows."""
        alive = self.graph.alive_ids()
        count = min(self._bootstrap_count or default_num_landmarks(len(alive)), len(alive))
        landmarks = select_landmarks_maxmin_subset(resolver, alive, max(1, count))
        self._matrix = resolve_landmark_matrix_subset(
            resolver, landmarks, alive, self.graph.n
        )
        self.landmarks = landmarks
        self._landmark_row = {lm: row for row, lm in enumerate(landmarks)}
        self._bootstrap_count = len(landmarks)
        self._drift = 0

    # -- protocol -------------------------------------------------------------

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        if self._matrix is None or not self.landmarks:
            return self.trivial_bounds(i, j)
        col_i = self._matrix[:, i]
        col_j = self._matrix[:, j]
        lb = float(np.max(np.abs(col_i - col_j)))
        ub = min(float(np.min(col_i + col_j)), self.max_distance)
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Batch query: one ``L × B`` matrix reduction for the whole frontier.

        Column-slices the landmark matrix for every genuinely unknown pair
        at once and reduces along the landmark axis — the same elementwise
        operations as :meth:`bounds`, so results are identical per pair.
        """
        pairs = list(pairs)
        if self._matrix is None or not self.landmarks:
            return [self.bounds(i, j) for i, j in pairs]
        out: List[Bounds | None] = [None] * len(pairs)
        todo: List[int] = []
        ii: List[int] = []
        jj: List[int] = []
        for idx, (i, j) in enumerate(pairs):
            if i == j:
                out[idx] = Bounds(0.0, 0.0)
                continue
            known = self.graph.get(i, j)
            if known is not None:
                out[idx] = Bounds(known, known)
                continue
            todo.append(idx)
            ii.append(i)
            jj.append(j)
        if todo:
            lowers, uppers = kernels.laesa_sweep(
                self._matrix,
                np.asarray(ii, dtype=np.int64),
                np.asarray(jj, dtype=np.int64),
            )
            cap = self.max_distance
            for pos, idx in enumerate(todo):
                lb = float(lowers[pos])
                ub = min(float(uppers[pos]), cap)
                if lb > ub:
                    lb = ub
                out[idx] = Bounds(lb, ub)
        return out

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Refresh matrix cells when a landmark's distance was resolved."""
        if self._matrix is None:
            return
        row = self._landmark_row.get(i)
        if row is not None:
            self._matrix[row, j] = distance
        row = self._landmark_row.get(j)
        if row is not None:
            self._matrix[row, i] = distance
