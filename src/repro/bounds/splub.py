"""SPLUB — Algorithm 1 of the paper (Shortest-Path Lower & Upper Bounds).

Produces the *tightest* bounds derivable from the known edges (Lemma 4.1):

* ``TUB(i, j) = sp(i, j)`` — the shortest path through known edges;
* ``TLB(i, j) = max over known edges (k, l) of
  d(k, l) − min(sp(i, k) + sp(j, l), sp(i, l) + sp(j, k))`` — "wrap the two
  shortest paths onto the longest edge of some path".

Each query needs Dijkstra trees from both endpoints (``O(m + n log n)``)
and a sweep over the known edges.  This implementation is *incremental*:

* Dijkstra trees are memoised per source, keyed on the graph's global
  edge-insert epoch — equal epochs mean an identical graph, so a cached
  tree is exact, and a batch of queries sharing an endpoint (``knearest(q,
  ·)``) pays **one** Dijkstra from ``q`` instead of one per pair;
* the edge sweep runs as a NumPy reduction over the graph's flat edge
  mirror instead of a Python loop.

Updates remain free: the shared graph's edge insert (which advances the
epoch and thereby invalidates stale trees) is all the state there is.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Tuple

import numpy as np

from repro.bounds import kernels
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


def dijkstra_distances(graph: PartialDistanceGraph, source: int) -> np.ndarray:
    """Single-source shortest paths over the known edges (binary heap).

    Edge relaxation is vectorised over the graph's flat adjacency mirrors;
    the returned array holds ``inf`` for unreachable nodes.
    """
    dist = np.full(graph.n, math.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        ids, weights = graph.adjacency_arrays(u)
        nd = d + weights
        improved = nd < dist[ids]
        if improved.any():
            for v, ndv in zip(ids[improved].tolist(), nd[improved].tolist()):
                dist[v] = ndv
                heappush(heap, (ndv, v))
    return dist


class Splub(BaseBoundProvider):
    """Exact tightest-bounds provider with epoch-memoised shortest paths.

    ``cache_trees=False`` restores the original per-query behaviour (two
    fresh Dijkstras per call) for ablations; bounds are identical either
    way, only :attr:`dijkstra_runs` moves.
    """

    name = "SPLUB"

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        cache_trees: bool = True,
    ) -> None:
        super().__init__(graph, max_distance)
        self.cache_trees = cache_trees
        #: Dijkstra computations actually performed (cache misses).
        self.dijkstra_runs = 0
        #: Cached trees dropped / patched in place by mutation maintenance.
        self.trees_dropped = 0
        self.trees_patched = 0
        self._tree_cache: Dict[int, Tuple[int, np.ndarray]] = {}

    def shortest_paths(self, source: int) -> np.ndarray:
        """The Dijkstra tree from ``source``, memoised on the graph epoch.

        Trees are computed by :func:`repro.bounds.kernels.sssp` over the
        graph's CSR view — compiled when numba is active, a NumPy heap loop
        otherwise; both produce arrays byte-identical to
        :func:`dijkstra_distances` over the per-node mirrors.
        """
        graph = self.graph
        if self.cache_trees:
            cached = self._tree_cache.get(source)
            if cached is not None and cached[0] == graph.epoch:
                return cached[1]
        indptr, indices, weights = graph.csr_arrays()
        dist = kernels.sssp(indptr, indices, weights, graph.n, source)
        self.dijkstra_runs += 1
        if self.cache_trees:
            self._tree_cache[source] = (graph.epoch, dist)
        return dist

    def apply_mutations(self, inserted, removed, resolver=None) -> Dict[str, int]:
        """Incrementally maintain the tree cache across a mutation batch.

        Only trees *sourced at* a mutated id are dropped.  Every surviving
        tree is patched in place — padded to the grown universe and with the
        mutated ids' entries masked to ``inf`` — then re-stamped to the
        current epoch.  The patch is sound: a stale shortest-path value is
        still a path through *true* distances, hence a valid upper bound on
        the surviving pair's distance (removal can only lengthen shortest
        paths, never invalidate old ones); only a *recycled* id's column
        refers to a dead incarnation, and those are exactly the masked ones.
        """
        mutated = set(inserted) | set(removed)
        n = self.graph.n
        epoch = self.graph.epoch
        dropped = patched = 0
        for source in list(self._tree_cache):
            _, dist = self._tree_cache[source]
            if source in mutated:
                del self._tree_cache[source]
                dropped += 1
                continue
            if dist.shape[0] < n:
                dist = np.concatenate([dist, np.full(n - dist.shape[0], math.inf)])
            else:
                dist = dist.copy()
            for node in mutated:
                if node < dist.shape[0]:
                    dist[node] = math.inf
            self._tree_cache[source] = (epoch, dist)
            patched += 1
        self.trees_dropped += dropped
        self.trees_patched += patched
        return {"splub_trees_dropped": dropped, "splub_trees_patched": patched}

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        sp_i = self.shortest_paths(i)
        sp_j = self.shortest_paths(j)
        ub = min(float(sp_i[j]), self.max_distance)
        lb = 0.0
        k_ids, l_ids, weights = self.graph.edge_arrays()
        if weights.size:
            # weights − inf = −inf, so unreachable detours never win the max.
            candidate = kernels.splub_sweep(sp_i, sp_j, k_ids, l_ids, weights)
            if candidate > lb:
                lb = candidate
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)
