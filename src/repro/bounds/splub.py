"""SPLUB — Algorithm 1 of the paper (Shortest-Path Lower & Upper Bounds).

Produces the *tightest* bounds derivable from the known edges (Lemma 4.1):

* ``TUB(i, j) = sp(i, j)`` — the shortest path through known edges;
* ``TLB(i, j) = max over known edges (k, l) of
  d(k, l) − min(sp(i, k) + sp(j, l), sp(i, l) + sp(j, k))`` — "wrap the two
  shortest paths onto the longest edge of some path".

Each query runs Dijkstra from both endpoints (``O(m + n log n)``) and then a
single sweep over the known edges.  Updates are free: the shared graph's
edge insert is all the state there is.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import List

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


def dijkstra_distances(graph: PartialDistanceGraph, source: int) -> List[float]:
    """Single-source shortest paths over the known edges (binary heap)."""
    dist = [math.inf] * graph.n
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


class Splub(BaseBoundProvider):
    """Exact tightest-bounds provider via per-query shortest paths."""

    name = "SPLUB"

    def __init__(self, graph: PartialDistanceGraph, max_distance: float = math.inf) -> None:
        super().__init__(graph, max_distance)

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        sp_i = dijkstra_distances(self.graph, i)
        sp_j = dijkstra_distances(self.graph, j)
        ub = min(sp_i[j], self.max_distance)
        lb = 0.0
        for k, l, w in self.graph.edges():
            detour = min(sp_i[k] + sp_j[l], sp_i[l] + sp_j[k])
            if detour < math.inf:
                candidate = w - detour
                if candidate > lb:
                    lb = candidate
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)
