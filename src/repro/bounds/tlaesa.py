"""TLAESA baseline — Micó, Oncina & Carrasco (1996), adapted as a bound provider.

TLAESA arranges the LAESA prototypes in a binary search tree and evaluates
pivots *adaptively* during a query instead of scanning the whole landmark
matrix.  Our adaptation keeps that essence:

* the landmark set is split recursively into a binary tree by farthest-pair
  partitioning (using only landmark-to-landmark distances, which are already
  in the matrix — no extra oracle calls beyond the LAESA bootstrap);
* a query performs two greedy descents — one steered to minimise the 2-hop
  sum (tightening the upper bound), one to maximise the row difference
  (tightening the lower bound) — and computes LAESA-style bounds from the
  pivots visited along the way (``O(log L)`` of them) instead of all ``L``.

The resulting profile matches the paper's observations: per-query CPU below
full LAESA for large landmark sets, bounds of similar-but-not-identical
quality (sometimes better, sometimes worse, dataset-dependent), and always
much looser than the Tri Scheme once the graph has accumulated triangles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver
from repro.bounds.laesa import Laesa


@dataclass
class _Node:
    """Binary pivot-tree node over landmark *rows*."""

    pivot_row: int
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None


class Tlaesa(Laesa):
    """Tree-descending landmark bound provider."""

    name = "TLAESA"

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        num_landmarks: int | None = None,
    ) -> None:
        super().__init__(graph, max_distance, num_landmarks)
        self._root: Optional[_Node] = None
        self._landmark_dist: np.ndarray | None = None

    # -- construction -----------------------------------------------------

    def bootstrap(self, resolver: SmartResolver, multiplier: float = 1.0) -> int:
        calls = super().bootstrap(resolver, multiplier)
        self._build_tree()
        return calls

    def adopt(self, landmarks, matrix) -> None:
        super().adopt(landmarks, matrix)
        self._build_tree()

    def _build_tree(self) -> None:
        if self._matrix is None or not self.landmarks:
            self._root = None
            return
        # landmark-to-landmark distances: column-sliced from the full matrix.
        cols = np.asarray(self.landmarks, dtype=np.intp)
        self._landmark_dist = self._matrix[:, cols]
        self._root = self._split(list(range(len(self.landmarks))))

    def _split(self, rows: List[int]) -> Optional[_Node]:
        if not rows:
            return None
        if len(rows) == 1:
            return _Node(pivot_row=rows[0])
        dist = self._landmark_dist
        # Farthest pair within this node seeds the two children.
        sub = dist[np.ix_(rows, rows)]
        flat = int(np.argmax(sub))
        a_pos, b_pos = divmod(flat, len(rows))
        a, b = rows[a_pos], rows[b_pos]
        if a == b:
            # All-zero distances (duplicate landmarks); chain arbitrarily.
            return _Node(pivot_row=rows[0], left=self._split(rows[1:]))
        left_rows, right_rows = [], []
        for r in rows:
            if dist[r, a] <= dist[r, b]:
                left_rows.append(r)
            else:
                right_rows.append(r)
        node = _Node(pivot_row=a)
        node.left = self._split([r for r in left_rows if r != a]) or _Node(pivot_row=a)
        node.right = self._split(right_rows) if right_rows else None
        if node.right is None:
            node.right = _Node(pivot_row=b) if b in left_rows else None
        return node

    # -- query ----------------------------------------------------------------

    def _collect_rows(self, i: int, j: int) -> List[int]:
        """Pivot rows gathered by the two greedy descents."""
        matrix = self._matrix
        visited: List[int] = []
        seen: set[int] = set()

        def descend(score) -> None:
            node = self._root
            while node is not None:
                if node.pivot_row not in seen:
                    seen.add(node.pivot_row)
                    visited.append(node.pivot_row)
                left, right = node.left, node.right
                if left is None and right is None:
                    break
                if left is None:
                    node = right
                elif right is None:
                    node = left
                else:
                    node = left if score(left.pivot_row) <= score(right.pivot_row) else right

        # Descent 1: chase the smallest 2-hop sum (upper-bound tightening).
        descend(lambda row: matrix[row, i] + matrix[row, j])
        # Descent 2: chase the largest row difference (lower-bound tightening);
        # negate so "smaller is better" matches the descend helper.
        descend(lambda row: -abs(matrix[row, i] - matrix[row, j]))
        return visited

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        if self._matrix is None or self._root is None:
            return self.trivial_bounds(i, j)
        rows = self._collect_rows(i, j)
        sub = self._matrix[rows, :]
        col_i = sub[:, i]
        col_j = sub[:, j]
        lb = float(np.max(np.abs(col_i - col_j)))
        ub = min(float(np.min(col_i + col_j)), self.max_distance)
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    # The adaptive descent visits different pivots per pair, so LAESA's
    # full-matrix batch kernel would return *different* (tighter) bounds.
    # Fall back to the per-pair loop to keep bounds_many ≡ bounds.
    vectorized_bounds = False
    bounds_many = BaseBoundProvider.bounds_many
