"""ADM baseline — Approximate Distance Map of Shasha & Wang (1990).

The state-of-the-art exact-bounds baseline the paper compares against.  ADM
keeps a full ``n × n`` matrix ``HI`` of tightest upper bounds (the
shortest-path closure of the known edges), updated incrementally in
``O(n^2)`` per resolved edge; lower bounds are evaluated against that
closure with a vectorised sweep over all known edges.

The produced bounds are the *tightest* obtainable from the known distances —
identical to SPLUB's (Lemma 4.1) — but the quadratic per-update cost and
quadratic memory are what make ADM "a cubic algorithm [that] requires more
than 2× more time" (paper §5.2) and unusable beyond small graphs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


class Adm(BaseBoundProvider):
    """Matrix-based exact bound provider (Shasha–Wang ADM)."""

    name = "ADM"

    def __init__(self, graph: PartialDistanceGraph, max_distance: float = math.inf) -> None:
        super().__init__(graph, max_distance)
        n = graph.n
        self._hi = np.full((n, n), math.inf)
        np.fill_diagonal(self._hi, 0.0)
        # Known-edge endpoint/weight arrays for the vectorised LB sweep.
        self._edge_k: list[int] = []
        self._edge_l: list[int] = []
        self._edge_w: list[float] = []
        self._edge_arrays: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        for k, l, w in graph.edges():
            self.notify_resolved(k, l, w)

    # -- update (Problem 2) -------------------------------------------------

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        """Incremental shortest-path-closure update: ``O(n^2)``."""
        hi = self._hi
        if distance >= hi[i, j]:
            # Edge cannot shorten anything, but it still participates in LBs.
            self._record_edge(i, j, distance)
            return
        hi[i, j] = hi[j, i] = distance
        # Standard one-edge APSP refresh: any improved path routes through
        # the new edge in one of its two orientations.
        via_ij = hi[:, i][:, None] + distance + hi[j, :][None, :]
        via_ji = hi[:, j][:, None] + distance + hi[i, :][None, :]
        np.minimum(hi, via_ij, out=hi)
        np.minimum(hi, via_ji, out=hi)
        self._record_edge(i, j, distance)

    def _record_edge(self, i: int, j: int, distance: float) -> None:
        self._edge_k.append(i)
        self._edge_l.append(j)
        self._edge_w.append(distance)
        self._edge_arrays = None

    def _edges_as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._edge_arrays is None:
            self._edge_arrays = (
                np.asarray(self._edge_k, dtype=np.intp),
                np.asarray(self._edge_l, dtype=np.intp),
                np.asarray(self._edge_w, dtype=np.float64),
            )
        return self._edge_arrays

    # -- query (Problem 1) ----------------------------------------------------

    def upper_matrix(self) -> np.ndarray:
        """Read-only view of the tightest-upper-bound (closure) matrix."""
        return self._hi

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        hi = self._hi
        ub = min(float(hi[i, j]), self.max_distance)
        lb = 0.0
        if self._edge_k:
            ks, ls, ws = self._edges_as_arrays()
            detour = np.minimum(hi[i, ks] + hi[ls, j], hi[i, ls] + hi[ks, j])
            finite = detour < math.inf
            if finite.any():
                lb = float(np.max(ws[finite] - detour[finite]))
                if lb < 0.0:
                    lb = 0.0
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)


class AdmIncremental(BaseBoundProvider):
    """Faithful *incremental* ADM: one-pass local update rules per new edge.

    Where :class:`Adm` recomputes globally consistent tightest bounds, this
    variant applies Shasha & Wang's original per-insertion propagation only
    against the two endpoints of the freshly resolved edge:

    * ``HI[a,b] = min(HI[a,b], HI[a,i] + d + HI[j,b], HI[a,j] + d + HI[i,b])``
    * ``LO[a,b] = max(LO[a,b], LO[a,e] − HI[b,e], LO[b,e] − HI[a,e])`` for
      ``e ∈ {i, j}``

    without iterating the rules to a fixpoint.  The upper bounds remain
    tight (the one-pass rule is exact for shortest paths), but the lower
    bounds can lag the true tightest values — which is precisely the slack
    the Direct Feasibility Test exploits in the paper's Figure 4.  Queries
    are ``O(1)`` matrix lookups.
    """

    name = "ADM-inc"

    def __init__(self, graph: PartialDistanceGraph, max_distance: float = math.inf) -> None:
        super().__init__(graph, max_distance)
        n = graph.n
        self._hi = np.full((n, n), min(max_distance, math.inf))
        np.fill_diagonal(self._hi, 0.0)
        self._lo = np.zeros((n, n))
        for k, l, w in graph.edges():
            self.notify_resolved(k, l, w)

    def notify_resolved(self, i: int, j: int, distance: float) -> None:
        hi = self._hi
        lo = self._lo
        hi[i, j] = hi[j, i] = distance
        lo[i, j] = lo[j, i] = distance
        # Upper-bound propagation through the new edge (exact for UBs).
        via_ij = hi[:, i][:, None] + distance + hi[j, :][None, :]
        via_ji = hi[:, j][:, None] + distance + hi[i, :][None, :]
        np.minimum(hi, via_ij, out=hi)
        np.minimum(hi, via_ji, out=hi)
        # One-pass lower-bound propagation against the two endpoints only.
        for e in (i, j):
            diff = lo[:, e][:, None] - hi[:, e][None, :]
            np.maximum(lo, diff, out=lo)
            np.maximum(lo, diff.T, out=lo)
        np.fill_diagonal(lo, 0.0)
        np.clip(lo, 0.0, None, out=lo)

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        lb = float(self._lo[i, j])
        ub = min(float(self._hi[i, j]), self.max_distance)
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)
