"""Compiled hot kernels over CSR adjacency arrays.

The three bound-maintenance loops that dominate CPU once the oracle is
cheap or sharded — the Tri frontier sweep, the SPLUB Dijkstra relaxation,
and the LAESA/sketch landmark-matrix sweep — are implemented here twice:

* a **Numba** backend (``@njit``-compiled, used automatically when numba
  is importable), and
* a **pure-NumPy fallback** with identical IEEE-754 elementwise operations
  and order-independent min/max reductions, so both backends return
  *byte-identical* results (the CI parity job pins this).

Every kernel consumes the ``(indptr, indices, weights)`` CSR triple served
by :meth:`repro.core.partial_graph.PartialDistanceGraph.csr_arrays` (which
is the shared-memory :meth:`repro.core.csr_store.CSRStore.csr` view when a
store is bound) instead of rebuilding per-call flat mirrors.

Backend selection happens at import: set ``REPRO_NO_JIT=1`` to force the
NumPy fallback even when numba is installed (the CI matrix runs the suite
both ways), or call :func:`disable_jit` / :func:`enable_jit` at runtime
(the CLI ``--no-jit`` flag does).  :func:`backend` reports which one is
active.
"""

from __future__ import annotations

import math
import os
from heapq import heappop, heappush
from typing import Dict, Tuple

import numpy as np

#: Environment knob: any value other than empty/"0"/"false" forces the
#: NumPy fallback at import time.
ENV_NO_JIT = "REPRO_NO_JIT"


def _env_disables_jit() -> bool:
    return os.environ.get(ENV_NO_JIT, "").strip().lower() not in ("", "0", "false")


# -- NumPy fallback implementations -----------------------------------------


def _tri_frontier_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    u: int,
    others: np.ndarray,
    cap: float,
    relaxation: float,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Tri bounds for every pair ``(u, c)`` over CSR rows, one dense gather.

    Returns ``(lowers, uppers, triangles)`` aligned with ``others``;
    candidates without triangles get ``(0, cap)``.  Same scatter/gather +
    segmented-reduceat shape as the PR-2 mirror kernel, but the candidate
    rows come from one flat CSR gather instead of per-node mirror lookups.
    """
    k = others.shape[0]
    lbs = np.zeros(k, dtype=np.float64)
    ubs = np.full(k, cap, dtype=np.float64)
    s, e = int(indptr[u]), int(indptr[u + 1])
    if e == s:
        return lbs, ubs, 0
    # Two sweep orders compute the same triangle set {(u, w, c) : both
    # edges known}: candidate-major scans every candidate's adjacency
    # (work = sum of candidate degrees), neighbor-major scans the adjacency
    # of u's neighbors (work = sum of N(u) degrees).  min/max reductions
    # are order-independent bit-for-bit, so pick whichever touches less.
    cand_work = int((indptr[others + 1] - indptr[others]).sum())
    nbr_work = int((indptr[indices[s:e] + 1] - indptr[indices[s:e]]).sum())
    if nbr_work < cand_work:
        return _tri_frontier_numpy_nbr(
            indptr, indices, weights, n, u, others, cap, relaxation, lbs, ubs
        )
    dense = np.full(n, math.inf)
    dense[indices[s:e]] = weights[s:e]
    starts = indptr[others]
    lengths = indptr[others + 1] - starts
    nz = np.nonzero(lengths)[0]
    if nz.size == 0:
        return lbs, ubs, 0
    l_nz = lengths[nz].astype(np.intp)
    s_nz = starts[nz].astype(np.intp)
    total = int(l_nz.sum())
    offsets = np.zeros(nz.size, dtype=np.intp)
    np.cumsum(l_nz[:-1], out=offsets[1:])
    flat = np.repeat(s_nz - offsets, l_nz) + np.arange(total, dtype=np.intp)
    wc = weights[flat]
    du = dense[indices[flat]]
    valid = np.isfinite(du)
    triangles = int(valid.sum())
    c = relaxation
    if c == 1.0:
        lb_elem = np.where(valid, np.abs(du - wc), -math.inf)
    else:
        lb_elem = np.where(valid, np.maximum(du / c - wc, wc / c - du), -math.inf)
    ub_elem = np.where(valid, du + wc, math.inf)
    lb_red = np.maximum.reduceat(lb_elem, offsets)
    ub_red = np.minimum.reduceat(ub_elem, offsets)
    if c != 1.0:
        # min(c·(x+y)) == c·min(x+y): positive scaling is monotone under
        # IEEE-754 rounding, so scaling after the reduction is bit-identical
        # to scaling each element first.
        ub_red = c * ub_red
    np.maximum(lb_red, 0.0, out=lb_red)
    np.minimum(ub_red, cap, out=ub_red)
    np.minimum(lb_red, ub_red, out=lb_red)
    lbs[nz] = lb_red
    ubs[nz] = ub_red
    return lbs, ubs, triangles


def _tri_frontier_numpy_nbr(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    u: int,
    others: np.ndarray,
    cap: float,
    relaxation: float,
    lbs: np.ndarray,
    ubs: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Neighbor-major Tri sweep: enumerate triangles from u's neighbor rows.

    Every element (one triangle ``u — w — c``) appears in exactly one
    neighbor row, so dense scatter-reductions over the third vertex see the
    identical element multiset as the candidate-major reduceat — and exact
    min/max make the reduction order irrelevant bit-for-bit.
    """
    s, e = int(indptr[u]), int(indptr[u + 1])
    nbrs = indices[s:e]
    d_un = weights[s:e]
    starts = indptr[nbrs].astype(np.intp)
    lengths = (indptr[nbrs + 1] - indptr[nbrs]).astype(np.intp)
    total = int(lengths.sum())
    triangles = 0
    if total:
        offsets = np.zeros(nbrs.shape[0], dtype=np.intp)
        np.cumsum(lengths[:-1], out=offsets[1:])
        flat = np.repeat(starts - offsets, lengths) + np.arange(total, dtype=np.intp)
        third = indices[flat]
        wkv = weights[flat]
        duk = np.repeat(d_un, lengths)
        c = relaxation
        if c == 1.0:
            lb_elem = np.abs(duk - wkv)
        else:
            lb_elem = np.maximum(duk / c - wkv, wkv / c - duk)
        ub_elem = duk + wkv
        lb_dense = np.full(n, -math.inf)
        ub_dense = np.full(n, math.inf)
        count = np.zeros(n, dtype=np.int64)
        np.maximum.at(lb_dense, third, lb_elem)
        np.minimum.at(ub_dense, third, ub_elem)
        np.add.at(count, third, 1)
        lb_red = lb_dense[others]
        ub_red = ub_dense[others]
        triangles = int(count[others].sum())
        if c != 1.0:
            ub_red = c * ub_red
        np.maximum(lb_red, 0.0, out=lb_red)
        np.minimum(ub_red, cap, out=ub_red)
        np.minimum(lb_red, ub_red, out=lb_red)
        lbs[:] = lb_red
        ubs[:] = ub_red
    return lbs, ubs, triangles


def _sssp_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    source: int,
) -> np.ndarray:
    """Single-source shortest paths over a CSR adjacency (binary heap).

    Mirrors :func:`repro.bounds.splub.dijkstra_distances` exactly — same
    heap order, same vectorised relaxation arithmetic — so the returned
    array is byte-identical to the mirror-based implementation.
    """
    dist = np.full(n, math.inf)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        s, e = int(indptr[u]), int(indptr[u + 1])
        ids = indices[s:e]
        nd = d + weights[s:e]
        improved = nd < dist[ids]
        if improved.any():
            for v, ndv in zip(ids[improved].tolist(), nd[improved].tolist()):
                dist[v] = ndv
                heappush(heap, (ndv, v))
    return dist


def _splub_sweep_numpy(
    sp_i: np.ndarray,
    sp_j: np.ndarray,
    e_i: np.ndarray,
    e_j: np.ndarray,
    e_w: np.ndarray,
) -> float:
    """SPLUB TLB sweep: best ``w(k,l) − min-detour`` over the known edges.

    Returns ``-inf`` for an empty edge set; unreachable detours contribute
    ``-inf`` per edge and never win the max.
    """
    if e_w.size == 0:
        return -math.inf
    detour = np.minimum(sp_i[e_i] + sp_j[e_j], sp_i[e_j] + sp_j[e_i])
    return float((e_w - detour).max())


def _laesa_sweep_numpy(
    matrix: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Landmark-matrix reduction: raw ``(lowers, uppers)`` per pair.

    ``lowers[b] = max_l |D[l, ii[b]] − D[l, jj[b]]|`` and
    ``uppers[b] = min_l D[l, ii[b]] + D[l, jj[b]]`` — uncapped; callers
    clamp against their ``max_distance``.
    """
    cols_i = matrix[:, ii]
    cols_j = matrix[:, jj]
    lowers = np.max(np.abs(cols_i - cols_j), axis=0)
    uppers = np.min(cols_i + cols_j, axis=0)
    return lowers, uppers


_NUMPY_IMPL: Dict[str, object] = {
    "tri_frontier": _tri_frontier_numpy,
    "sssp": _sssp_numpy,
    "splub_sweep": _splub_sweep_numpy,
    "laesa_sweep": _laesa_sweep_numpy,
}


# -- Numba backend -----------------------------------------------------------

try:  # pragma: no cover - exercised only on the numba CI leg
    if _env_disables_jit():
        raise ImportError("jit disabled via " + ENV_NO_JIT)
    from numba import njit as _njit
except ImportError:  # numba absent (or vetoed): NumPy fallback only
    _njit = None

if _njit is not None:  # pragma: no cover - exercised only on the numba CI leg

    @_njit(cache=True)
    def _tri_frontier_numba(indptr, indices, weights, n, u, others, cap, relaxation):
        k = others.shape[0]
        lbs = np.zeros(k, dtype=np.float64)
        ubs = np.full(k, cap, dtype=np.float64)
        triangles = 0
        s = indptr[u]
        e = indptr[u + 1]
        if e == s:
            return lbs, ubs, triangles
        dense = np.full(n, np.inf)
        for t in range(s, e):
            dense[indices[t]] = weights[t]
        c = relaxation
        for idx in range(k):
            cand = others[idx]
            cs = indptr[cand]
            ce = indptr[cand + 1]
            if ce == cs:
                continue
            lb = -np.inf
            ub = np.inf
            for t in range(cs, ce):
                du = dense[indices[t]]
                if du == np.inf:
                    continue
                wc = weights[t]
                triangles += 1
                if c == 1.0:
                    gap = du - wc
                    if gap < 0.0:
                        gap = -gap
                else:
                    g1 = du / c - wc
                    g2 = wc / c - du
                    gap = g1 if g1 > g2 else g2
                if gap > lb:
                    lb = gap
                tot = du + wc
                if tot < ub:
                    ub = tot
            if c != 1.0:
                ub = c * ub
            if lb < 0.0:
                lb = 0.0
            if ub > cap:
                ub = cap
            if lb > ub:
                lb = ub
            lbs[idx] = lb
            ubs[idx] = ub
        return lbs, ubs, triangles

    @_njit(cache=True)
    def _sssp_numba(indptr, indices, weights, n, source):
        dist = np.full(n, np.inf)
        dist[source] = 0.0
        heap_cap = indptr[n] + 1
        heap_d = np.empty(heap_cap, dtype=np.float64)
        heap_v = np.empty(heap_cap, dtype=np.int64)
        heap_d[0] = 0.0
        heap_v[0] = source
        size = 1
        while size > 0:
            d = heap_d[0]
            u = heap_v[0]
            size -= 1
            # Move the last leaf to the root and sift it down; ties break on
            # the node id, matching heapq's (d, v) tuple order exactly.
            heap_d[0] = heap_d[size]
            heap_v[0] = heap_v[size]
            pos = 0
            while True:
                child = 2 * pos + 1
                if child >= size:
                    break
                right = child + 1
                if right < size and (
                    heap_d[right] < heap_d[child]
                    or (heap_d[right] == heap_d[child] and heap_v[right] < heap_v[child])
                ):
                    child = right
                if heap_d[child] < heap_d[pos] or (
                    heap_d[child] == heap_d[pos] and heap_v[child] < heap_v[pos]
                ):
                    heap_d[pos], heap_d[child] = heap_d[child], heap_d[pos]
                    heap_v[pos], heap_v[child] = heap_v[child], heap_v[pos]
                    pos = child
                else:
                    break
            if d > dist[u]:
                continue
            for t in range(indptr[u], indptr[u + 1]):
                v = indices[t]
                nd = d + weights[t]
                if nd < dist[v]:
                    dist[v] = nd
                    heap_d[size] = nd
                    heap_v[size] = v
                    cpos = size
                    size += 1
                    while cpos > 0:
                        parent = (cpos - 1) // 2
                        if heap_d[cpos] < heap_d[parent] or (
                            heap_d[cpos] == heap_d[parent]
                            and heap_v[cpos] < heap_v[parent]
                        ):
                            heap_d[cpos], heap_d[parent] = heap_d[parent], heap_d[cpos]
                            heap_v[cpos], heap_v[parent] = heap_v[parent], heap_v[cpos]
                            cpos = parent
                        else:
                            break
        return dist

    @_njit(cache=True)
    def _splub_sweep_numba(sp_i, sp_j, e_i, e_j, e_w):
        best = -np.inf
        for t in range(e_w.shape[0]):
            a = sp_i[e_i[t]] + sp_j[e_j[t]]
            b = sp_i[e_j[t]] + sp_j[e_i[t]]
            detour = a if a < b else b
            cand = e_w[t] - detour
            if cand > best:
                best = cand
        return best

    @_njit(cache=True)
    def _laesa_sweep_numba(matrix, ii, jj):
        rows = matrix.shape[0]
        k = ii.shape[0]
        lowers = np.empty(k, dtype=np.float64)
        uppers = np.empty(k, dtype=np.float64)
        for b in range(k):
            i = ii[b]
            j = jj[b]
            lb = -np.inf
            ub = np.inf
            for row in range(rows):
                di = matrix[row, i]
                dj = matrix[row, j]
                gap = di - dj
                if gap < 0.0:
                    gap = -gap
                if gap > lb:
                    lb = gap
                tot = di + dj
                if tot < ub:
                    ub = tot
            lowers[b] = lb
            uppers[b] = ub
        return lowers, uppers

    def _sssp_numba_wrap(indptr, indices, weights, n, source):
        return _sssp_numba(indptr, indices, weights, int(n), int(source))

    def _tri_frontier_numba_wrap(indptr, indices, weights, n, u, others, cap, c):
        lbs, ubs, triangles = _tri_frontier_numba(
            indptr,
            indices,
            weights,
            int(n),
            int(u),
            np.ascontiguousarray(others, dtype=np.int64),
            float(cap),
            float(c),
        )
        return lbs, ubs, int(triangles)

    def _splub_sweep_numba_wrap(sp_i, sp_j, e_i, e_j, e_w):
        if e_w.size == 0:
            return -math.inf
        return float(_splub_sweep_numba(sp_i, sp_j, e_i, e_j, e_w))

    def _laesa_sweep_numba_wrap(matrix, ii, jj):
        return _laesa_sweep_numba(
            np.ascontiguousarray(matrix, dtype=np.float64),
            np.ascontiguousarray(ii, dtype=np.int64),
            np.ascontiguousarray(jj, dtype=np.int64),
        )

    _NUMBA_IMPL: Dict[str, object] | None = {
        "tri_frontier": _tri_frontier_numba_wrap,
        "sssp": _sssp_numba_wrap,
        "splub_sweep": _splub_sweep_numba_wrap,
        "laesa_sweep": _laesa_sweep_numba_wrap,
    }
else:
    _NUMBA_IMPL = None

HAVE_NUMBA = _NUMBA_IMPL is not None

_active: Dict[str, object] = dict(_NUMBA_IMPL if HAVE_NUMBA else _NUMPY_IMPL)
_active_name = "numba" if HAVE_NUMBA else "numpy"


# -- backend control ---------------------------------------------------------


def backend() -> str:
    """The active backend name: ``"numba"`` or ``"numpy"``."""
    return _active_name


def jit_enabled() -> bool:
    """True when kernels dispatch to the compiled backend."""
    return _active_name == "numba"


def disable_jit() -> None:
    """Switch every kernel to the pure-NumPy fallback (the CLI ``--no-jit``)."""
    global _active_name
    _active.update(_NUMPY_IMPL)
    _active_name = "numpy"


def enable_jit() -> bool:
    """Switch back to the compiled backend; returns False when unavailable.

    Unavailable means numba was not importable at module import (including
    when ``REPRO_NO_JIT`` vetoed it) — re-enabling requires a fresh process.
    """
    global _active_name
    if not HAVE_NUMBA:
        return False
    _active.update(_NUMBA_IMPL)
    _active_name = "numba"
    return True


def implementations(name: str) -> Dict[str, object]:
    """Both raw implementations of kernel ``name`` keyed by backend name.

    The parity tests call each backend directly on identical inputs and
    assert byte-identical outputs; only ``"numpy"`` is present when numba
    is unavailable.
    """
    impls: Dict[str, object] = {"numpy": _NUMPY_IMPL[name]}
    if HAVE_NUMBA:
        impls["numba"] = _NUMBA_IMPL[name]
    return impls


# -- public kernel entry points ---------------------------------------------


def tri_frontier(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    u: int,
    others: np.ndarray,
    cap: float,
    relaxation: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Tri bounds for every pair ``(u, others[b])`` in one CSR sweep.

    Returns ``(lowers, uppers, triangles_inspected)``; bounds are clamped
    to ``[0, cap]`` exactly like the per-pair Tri kernels.
    """
    return _active["tri_frontier"](indptr, indices, weights, n, u, others, cap, relaxation)


def sssp(
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
    n: int,
    source: int,
) -> np.ndarray:
    """Dijkstra distances from ``source`` over a CSR adjacency."""
    return _active["sssp"](indptr, indices, weights, n, source)


def splub_sweep(
    sp_i: np.ndarray,
    sp_j: np.ndarray,
    e_i: np.ndarray,
    e_j: np.ndarray,
    e_w: np.ndarray,
) -> float:
    """Best SPLUB lower-bound candidate over the known-edge columns."""
    return _active["splub_sweep"](sp_i, sp_j, e_i, e_j, e_w)


def laesa_sweep(
    matrix: np.ndarray,
    ii: np.ndarray,
    jj: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Raw landmark-matrix bound reduction for a batch of column pairs."""
    return _active["laesa_sweep"](matrix, ii, jj)
