"""Bound providers: the paper's schemes and the adapted baselines."""

from repro.bounds import kernels
from repro.bounds.adm import Adm, AdmIncremental
from repro.bounds.aesa import Aesa
from repro.bounds.dft import DirectFeasibilityTest
from repro.bounds.landmarks import (
    SELECTION_STRATEGIES,
    bootstrap_with_landmarks,
    default_num_landmarks,
    resolve_landmark_matrix,
    select_landmarks,
    select_landmarks_maxmin,
    select_landmarks_maxsum,
    select_landmarks_random,
)
from repro.bounds.laesa import Laesa
from repro.bounds.sketch import SketchBoundProvider
from repro.bounds.splub import Splub, dijkstra_distances
from repro.bounds.tlaesa import Tlaesa
from repro.bounds.tri import TriScheme

__all__ = [
    "Adm",
    "AdmIncremental",
    "Aesa",
    "DirectFeasibilityTest",
    "Laesa",
    "SketchBoundProvider",
    "Splub",
    "Tlaesa",
    "TriScheme",
    "kernels",
    "bootstrap_with_landmarks",
    "default_num_landmarks",
    "dijkstra_distances",
    "resolve_landmark_matrix",
    "SELECTION_STRATEGIES",
    "select_landmarks",
    "select_landmarks_maxmin",
    "select_landmarks_maxsum",
    "select_landmarks_random",
]
