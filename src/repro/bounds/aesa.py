"""AESA baseline — Vidal Ruiz (1986).

The ancestor of LAESA: precompute *every* pairwise distance, then answer
all queries from the matrix.  As a bound provider its bounds are exact
(everything is known), but its bootstrap costs the full ``C(n, 2)`` oracle
calls — the worst possible bill, included as the degenerate end of the
landmark-budget spectrum (the paper's §6 positions LAESA precisely as the
linear-preprocessing fix for this).
"""

from __future__ import annotations

import math

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph
from repro.core.resolver import SmartResolver


class Aesa(BaseBoundProvider):
    """Full-precomputation baseline: exact bounds after an O(n²) bootstrap."""

    name = "AESA"

    def __init__(self, graph: PartialDistanceGraph, max_distance: float = math.inf) -> None:
        super().__init__(graph, max_distance)

    def bootstrap(self, resolver: SmartResolver, multiplier: float = 1.0) -> int:
        """Resolve every pairwise distance.  Returns the calls spent."""
        before = resolver.oracle.calls
        n = resolver.oracle.n
        for i in range(n):
            for j in range(i + 1, n):
                resolver.distance(i, j)
        return resolver.oracle.calls - before

    def bounds(self, i: int, j: int) -> Bounds:
        return self.trivial_bounds(i, j)
