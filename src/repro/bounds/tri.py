"""Tri Scheme — Algorithm 2 of the paper.

Bounds an unknown edge ``(i, j)`` using only the *triangles* incident on it:
for every common known neighbour ``w`` of ``i`` and ``j``,

    |d(i, w) − d(j, w)|  <=  d(i, j)  <=  d(i, w) + d(j, w).

Triangles are enumerated by a sorted-merge intersection of the two
endpoints' adjacency lists (the paper uses balanced BSTs; we use sorted
arrays — see ``PartialDistanceGraph``).  Expected query cost is ``O(m/n)``
(Theorem 4.2); the update is the graph's ``O(log n)`` adjacency insert, so
:meth:`notify_resolved` is a no-op here.
"""

from __future__ import annotations

import math

from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


class TriScheme(BaseBoundProvider):
    """Triangle-neighbourhood bound provider (the paper's practical choice).

    ``relaxation`` supports the paper's *relaxed* triangle inequality
    ``d(x, z) <= c · (d(x, y) + d(y, z))`` (c >= 1): per common neighbour
    ``w`` the derived bounds become

        max(d(i,w)/c − d(j,w), d(j,w)/c − d(i,w))  <=  d(i, j)
        d(i, j)  <=  c · (d(i,w) + d(j,w))

    which reduce to the standard forms at ``c = 1``.  Squared Euclidean
    distance, for example, is a 2-relaxed metric.
    """

    name = "Tri"

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        relaxation: float = 1.0,
    ) -> None:
        super().__init__(graph, max_distance)
        if relaxation < 1.0:
            raise ValueError("relaxation factor must be >= 1")
        self.relaxation = float(relaxation)
        self.triangles_inspected = 0

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        lb = 0.0
        ub = self.max_distance
        weight = self.graph.weight
        c = self.relaxation
        if c == 1.0:
            for w in self.graph.common_neighbors(i, j):
                self.triangles_inspected += 1
                diw = weight(i, w)
                djw = weight(j, w)
                gap = diw - djw
                if gap < 0:
                    gap = -gap
                if gap > lb:
                    lb = gap
                total = diw + djw
                if total < ub:
                    ub = total
        else:
            for w in self.graph.common_neighbors(i, j):
                self.triangles_inspected += 1
                diw = weight(i, w)
                djw = weight(j, w)
                gap = max(diw / c - djw, djw / c - diw)
                if gap > lb:
                    lb = gap
                total = c * (diw + djw)
                if total < ub:
                    ub = total
        if lb > ub:
            # Only possible through floating-point jitter on a true metric.
            lb = ub
        return Bounds(lb, ub)
