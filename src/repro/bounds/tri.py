"""Tri Scheme — Algorithm 2 of the paper.

Bounds an unknown edge ``(i, j)`` using only the *triangles* incident on it:
for every common known neighbour ``w`` of ``i`` and ``j``,

    |d(i, w) − d(j, w)|  <=  d(i, j)  <=  d(i, w) + d(j, w).

Triangles are enumerated by a sorted-merge intersection of the two
endpoints' adjacency lists (the paper uses balanced BSTs; we use sorted
arrays — see ``PartialDistanceGraph``).  Expected query cost is ``O(m/n)``
(Theorem 4.2); the update is the graph's ``O(log n)`` adjacency insert, so
:meth:`notify_resolved` is a no-op here.

Three interchangeable kernels compute the reduction:

* :meth:`bounds_scalar` — the per-triangle Python loop (reference);
* the *per-pair vectorised* kernel — a ``np.searchsorted`` intersection
  over the graph's flat adjacency mirrors followed by array
  ``|diw − djw|`` / ``diw + djw`` reductions;
* the *frontier* kernel — when a whole batch shares one endpoint ``u``
  (``knearest(u, ·)`` / ``argmin(u, ·)`` frontiers always do), one dense
  gather of ``u``'s row plus segmented ``np.maximum.reduceat`` /
  ``np.minimum.reduceat`` reductions answer every pair in a handful of
  array operations total.

All kernels perform the identical IEEE-754 elementwise operations and
order-independent min/max reductions, so they return identical ``Bounds``;
:meth:`bounds` dispatches by endpoint degree (the array kernel only wins
once the intersected lists are long enough to amortise NumPy call overhead)
and :meth:`bounds_many` routes shared-endpoint batches through the frontier
kernel.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bounds import kernels
from repro.core.bounds import BaseBoundProvider, Bounds
from repro.core.partial_graph import PartialDistanceGraph


class TriScheme(BaseBoundProvider):
    """Triangle-neighbourhood bound provider (the paper's practical choice).

    ``relaxation`` supports the paper's *relaxed* triangle inequality
    ``d(x, z) <= c · (d(x, y) + d(y, z))`` (c >= 1): per common neighbour
    ``w`` the derived bounds become

        max(d(i,w)/c − d(j,w), d(j,w)/c − d(i,w))  <=  d(i, j)
        d(i, j)  <=  c · (d(i,w) + d(j,w))

    which reduce to the standard forms at ``c = 1``.  Squared Euclidean
    distance, for example, is a 2-relaxed metric.
    """

    name = "Tri"
    vectorized_bounds = True

    #: Minimum endpoint degree before single-pair queries switch from the
    #: scalar loop to the NumPy kernel.  All kernels return identical
    #: bounds; this only moves CPU time.  Set to ``math.inf`` to force the
    #: scalar loop everywhere (the loop-vs-vectorised benchmarks do).
    vector_threshold: float = 32

    #: Minimum frontier size before the shared-endpoint sweep runs over the
    #: graph's CSR view through :mod:`repro.bounds.kernels` instead of the
    #: per-node mirror kernel.  Identical bounds either way; the CSR kernel
    #: amortises one epoch-keyed CSR (re)build across the whole batch.  Set
    #: to ``math.inf`` to pin the mirror kernel (benchmark baselines do).
    frontier_csr_threshold: float = 8

    def __init__(
        self,
        graph: PartialDistanceGraph,
        max_distance: float = math.inf,
        relaxation: float = 1.0,
    ) -> None:
        super().__init__(graph, max_distance)
        if relaxation < 1.0:
            raise ValueError("relaxation factor must be >= 1")
        self.relaxation = float(relaxation)
        self.triangles_inspected = 0

    def bounds(self, i: int, j: int) -> Bounds:
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        if min(self.graph.degree(i), self.graph.degree(j)) >= self.vector_threshold:
            return self._bounds_vector(i, j)
        return self._bounds_loop(i, j)

    def bounds_many(self, pairs: Iterable[Tuple[int, int]]) -> List[Bounds]:
        """Batch query, routed through the fastest applicable kernel.

        A batch whose unknown pairs all share one endpoint (every
        ``knearest``/``argmin`` frontier does) is answered by the segmented
        frontier kernel in a handful of array operations; anything else
        falls back to the same per-pair dispatch :meth:`bounds` uses.
        Either way the result is element-for-element identical to per-pair
        queries.
        """
        pairs = list(pairs)
        out: List[Optional[Bounds]] = [None] * len(pairs)
        graph = self.graph
        todo: List[int] = []
        for idx, (i, j) in enumerate(pairs):
            if i == j:
                out[idx] = Bounds(0.0, 0.0)
                continue
            known = graph.get(i, j)
            if known is not None:
                out[idx] = Bounds(known, known)
                continue
            todo.append(idx)
        if todo:
            shared = self._shared_endpoint([pairs[idx] for idx in todo])
            # An infinite vector_threshold forces the scalar loop everywhere,
            # including here — the ablation benchmarks rely on that.
            if shared is not None and len(todo) >= 2 and math.isfinite(self.vector_threshold):
                others = [
                    pairs[idx][1] if pairs[idx][0] == shared else pairs[idx][0]
                    for idx in todo
                ]
                for idx, b in zip(todo, self._bounds_frontier(shared, others)):
                    out[idx] = b
            else:
                threshold = self.vector_threshold
                for idx in todo:
                    i, j = pairs[idx]
                    if min(graph.degree(i), graph.degree(j)) >= threshold:
                        out[idx] = self._bounds_vector(i, j)
                    else:
                        out[idx] = self._bounds_loop(i, j)
        return out

    def bounds_scalar(self, i: int, j: int) -> Bounds:
        """Reference per-triangle loop, bypassing the degree dispatch."""
        if i == j:
            return Bounds(0.0, 0.0)
        known = self.graph.get(i, j)
        if known is not None:
            return Bounds(known, known)
        return self._bounds_loop(i, j)

    @staticmethod
    def _shared_endpoint(pairs: Sequence[Tuple[int, int]]) -> Optional[int]:
        """The node present in every pair, or None."""
        cand_a, cand_b = pairs[0]
        for i, j in pairs:
            if cand_a != i and cand_a != j:
                cand_a = -1
            if cand_b != i and cand_b != j:
                cand_b = -1
            if cand_a < 0 and cand_b < 0:
                return None
        return cand_a if cand_a >= 0 else cand_b

    # -- kernels ------------------------------------------------------------

    def _bounds_loop(self, i: int, j: int) -> Bounds:
        lb = 0.0
        ub = self.max_distance
        weight = self.graph.weight
        c = self.relaxation
        if c == 1.0:
            for w in self.graph.common_neighbors(i, j):
                self.triangles_inspected += 1
                diw = weight(i, w)
                djw = weight(j, w)
                gap = diw - djw
                if gap < 0:
                    gap = -gap
                if gap > lb:
                    lb = gap
                total = diw + djw
                if total < ub:
                    ub = total
        else:
            for w in self.graph.common_neighbors(i, j):
                self.triangles_inspected += 1
                diw = weight(i, w)
                djw = weight(j, w)
                gap = max(diw / c - djw, djw / c - diw)
                if gap > lb:
                    lb = gap
                total = c * (diw + djw)
                if total < ub:
                    ub = total
        if lb > ub:
            # Only possible through floating-point jitter on a true metric.
            lb = ub
        return Bounds(lb, ub)

    def _bounds_vector(self, i: int, j: int) -> Bounds:
        ids_i, weights_i = self.graph.adjacency_arrays(i)
        ids_j, weights_j = self.graph.adjacency_arrays(j)
        if ids_i.size == 0 or ids_j.size == 0:
            return Bounds(0.0, self.max_distance)
        # Probe the shorter sorted-unique list into the longer one — cheaper
        # than np.intersect1d's concatenate-and-sort for these sizes.
        if ids_i.size < ids_j.size:
            short_ids, short_w, long_ids, long_w = ids_i, weights_i, ids_j, weights_j
        else:
            short_ids, short_w, long_ids, long_w = ids_j, weights_j, ids_i, weights_i
        slots = long_ids.searchsorted(short_ids)
        # mode="clip" maps the one possible out-of-range slot onto the last
        # element, which cannot match (its probe value is strictly larger).
        matched = long_ids.take(slots, mode="clip") == short_ids
        count = int(matched.sum())
        self.triangles_inspected += count
        if count == 0:
            return Bounds(0.0, self.max_distance)
        diw = short_w[matched]
        djw = long_w[slots[matched]]
        c = self.relaxation
        if c == 1.0:
            lb = float(np.abs(diw - djw).max())
            ub = float((diw + djw).min())
        else:
            # min(c·(x+y)) == c·min(x+y): scaling by a positive constant is
            # monotone under IEEE-754 rounding, so the minimising triangle's
            # value is bit-identical to the scalar loop's.
            lb = float(np.maximum(diw / c - djw, djw / c - diw).max())
            ub = c * float((diw + djw).min())
        if lb < 0.0:
            lb = 0.0
        if ub > self.max_distance:
            ub = self.max_distance
        if lb > ub:
            lb = ub
        return Bounds(lb, ub)

    def _bounds_frontier(self, u: int, others: Sequence[int]) -> List[Bounds]:
        """Bounds for every unknown pair ``(u, c)``, through the best kernel.

        Large frontiers run over the graph's CSR view via
        :func:`repro.bounds.kernels.tri_frontier` (compiled when numba is
        active, vectorised NumPy otherwise); small ones keep the per-node
        mirror kernel, which avoids touching the whole-graph CSR mirror.
        Both produce byte-identical bounds and triangle counts.
        """
        if len(others) >= self.frontier_csr_threshold:
            graph = self.graph
            indptr, indices, weights = graph.csr_arrays()
            lbs, ubs, triangles = kernels.tri_frontier(
                indptr,
                indices,
                weights,
                graph.n,
                u,
                np.asarray(others, dtype=np.int64),
                self.max_distance,
                self.relaxation,
            )
            self.triangles_inspected += int(triangles)
            # The kernel clamps to 0 <= lb <= ub <= cap, so validation can
            # be skipped — constructing ~|others| frozen dataclasses through
            # __init__ would otherwise dominate the sweep.
            return Bounds.list_from_arrays(lbs, ubs)
        return self._bounds_frontier_mirrors(u, others)

    def _bounds_frontier_mirrors(self, u: int, others: Sequence[int]) -> List[Bounds]:
        """The PR-2 frontier kernel over per-node mirrors (reference/baseline).

        Scatters ``u``'s adjacency into a dense row (``inf`` elsewhere),
        gathers it at every candidate neighbour in one shot, and reduces
        per candidate with ``np.maximum.reduceat`` / ``np.minimum.reduceat``.
        Non-triangles contribute ``-inf``/``+inf``, which never win the
        order-independent reductions, so each pair's result is identical to
        the per-pair kernels'.
        """
        graph = self.graph
        ids_u, weights_u = graph.adjacency_arrays(u)
        cap = self.max_distance
        if ids_u.size == 0:
            return [Bounds(0.0, cap)] * len(others)
        dense = np.full(graph.n, math.inf)
        dense[ids_u] = weights_u
        id_chunks: List[np.ndarray] = []
        weight_chunks: List[np.ndarray] = []
        lengths: List[int] = []
        slots: List[int] = []  # positions with a non-empty adjacency
        out: List[Optional[Bounds]] = [None] * len(others)
        for pos, other in enumerate(others):
            ids_c, weights_c = graph.adjacency_arrays(other)
            if ids_c.size == 0:
                out[pos] = Bounds(0.0, cap)
                continue
            id_chunks.append(ids_c)
            weight_chunks.append(weights_c)
            lengths.append(ids_c.size)
            slots.append(pos)
        if not slots:
            return out
        ids_cat = np.concatenate(id_chunks)
        wc = np.concatenate(weight_chunks)
        du = dense[ids_cat]
        valid = np.isfinite(du)
        self.triangles_inspected += int(valid.sum())
        c = self.relaxation
        if c == 1.0:
            lb_elem = np.where(valid, np.abs(du - wc), -math.inf)
            ub_elem = np.where(valid, du + wc, math.inf)
        else:
            lb_elem = np.where(valid, np.maximum(du / c - wc, wc / c - du), -math.inf)
            ub_elem = np.where(valid, du + wc, math.inf)
        offsets = np.zeros(len(lengths), dtype=np.intp)
        np.cumsum(lengths[:-1], out=offsets[1:])
        lbs = np.maximum.reduceat(lb_elem, offsets)
        ubs = np.minimum.reduceat(ub_elem, offsets)
        for k, pos in enumerate(slots):
            lb = float(lbs[k])
            ub = float(ubs[k]) if c == 1.0 else c * float(ubs[k])
            if lb < 0.0:
                lb = 0.0
            if ub > cap:
                ub = cap
            if lb > ub:
                lb = ub
            out[pos] = Bounds(lb, ub)
        return out
