"""Pluggable persistent cache backends for resolved distances.

When each oracle call costs real money or minutes, the resolved-pair set is
an asset worth keeping across *processes*, not just across phases of one
run.  A :class:`CacheBackend` stores ``(i, j) -> distance`` under canonical
pair keys; :class:`repro.exec.BatchOracle` consults it before dispatching a
batch and writes every fresh resolution through to it.

Two backends ship:

* :class:`MemoryCacheBackend` — a plain dict; useful for tests and for
  sharing one in-process cache between several oracles.
* :class:`SqliteCacheBackend` — a single-file SQLite store (stdlib only),
  the "experiment checkpoint" backend: re-running an experiment against the
  same file resolves every previously paid pair for free.
"""

from __future__ import annotations

import os
import sqlite3
from typing import Dict, Iterable, Mapping, Tuple, Union

from repro.core.oracle import canonical_pair

Pair = Tuple[int, int]
PathLike = Union[str, os.PathLike]


class CacheBackend:
    """Interface every persistent distance cache implements.

    Keys are canonicalised internally, so callers may pass ``(j, i)``.
    """

    def get(self, i: int, j: int) -> float | None:
        """Return the stored distance for ``(i, j)`` or None."""
        raise NotImplementedError

    def get_many(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        """Return the stored subset of ``pairs`` as a canonical-key dict."""
        out: Dict[Pair, float] = {}
        for i, j in pairs:
            value = self.get(i, j)
            if value is not None:
                out[canonical_pair(i, j)] = value
        return out

    def put(self, i: int, j: int, value: float) -> None:
        """Store one distance (overwrites silently — distances are stable)."""
        raise NotImplementedError

    def put_many(self, items: Mapping[Pair, float]) -> None:
        """Store many distances at once."""
        for (i, j), value in items.items():
            self.put(i, j, value)

    def __len__(self) -> int:
        raise NotImplementedError

    def items(self) -> Iterable[Tuple[Pair, float]]:
        """Iterate every stored ``((i, j), distance)``."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any underlying resources (no-op by default)."""

    def __enter__(self) -> "CacheBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class MemoryCacheBackend(CacheBackend):
    """Dict-backed cache — shareable within a process, gone at exit."""

    def __init__(self) -> None:
        self._store: Dict[Pair, float] = {}

    def get(self, i: int, j: int) -> float | None:
        return self._store.get(canonical_pair(i, j))

    def put(self, i: int, j: int, value: float) -> None:
        self._store[canonical_pair(i, j)] = float(value)

    def __len__(self) -> int:
        return len(self._store)

    def items(self) -> Iterable[Tuple[Pair, float]]:
        return self._store.items()


class SqliteCacheBackend(CacheBackend):
    """Single-file SQLite cache: distances survive process restarts.

    The schema is one table ``distances(i, j, d)`` keyed on the canonical
    pair.  Writes are committed per :meth:`put`/:meth:`put_many` call; a
    batch of fresh resolutions lands in one transaction.

    Safe to share across processes: the ``sqlite3`` connection is opened
    lazily *per process* (a connection carried through ``fork`` or a
    pickle is unsafe to use from the child), and every connection sets a
    busy timeout so concurrent write-through from several shards waits on
    the file lock instead of raising ``database is locked``.
    """

    #: Seconds a connection waits on a locked database before raising.
    BUSY_TIMEOUT = 30.0

    def __init__(self, path: PathLike, *, busy_timeout: float | None = None) -> None:
        self._path = os.fspath(path)
        self._busy_timeout = self.BUSY_TIMEOUT if busy_timeout is None else busy_timeout
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        # Fail fast on an unusable path/file: open (and create the schema)
        # eagerly in the constructing process too.
        self._connection()

    @property
    def path(self) -> str:
        """Filesystem location of the cache database."""
        return self._path

    def _connection(self) -> sqlite3.Connection:
        """The calling process's connection, opened on first use.

        A connection inherited from another process (via ``fork`` or a
        pickled backend) is dropped without closing it — closing would
        tear down the parent's file locks from the child.
        """
        pid = os.getpid()
        if self._conn is None or self._conn_pid != pid:
            conn = sqlite3.connect(
                self._path, timeout=self._busy_timeout, check_same_thread=False
            )
            conn.execute(f"PRAGMA busy_timeout = {int(self._busy_timeout * 1000)}")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS distances ("
                "i INTEGER NOT NULL, j INTEGER NOT NULL, d REAL NOT NULL, "
                "PRIMARY KEY (i, j))"
            )
            conn.commit()
            self._conn = conn
            self._conn_pid = pid
        return self._conn

    def __getstate__(self):
        state = self.__dict__.copy()
        # Connections never cross process boundaries; the worker reopens.
        state["_conn"] = None
        state["_conn_pid"] = None
        return state

    def get(self, i: int, j: int) -> float | None:
        key = canonical_pair(i, j)
        row = self._connection().execute(
            "SELECT d FROM distances WHERE i = ? AND j = ?", key
        ).fetchone()
        return None if row is None else float(row[0])

    def get_many(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        out: Dict[Pair, float] = {}
        for i, j in pairs:
            value = self.get(i, j)
            if value is not None:
                out[canonical_pair(i, j)] = value
        return out

    def put(self, i: int, j: int, value: float) -> None:
        key = canonical_pair(i, j)
        conn = self._connection()
        conn.execute(
            "INSERT OR REPLACE INTO distances (i, j, d) VALUES (?, ?, ?)",
            (key[0], key[1], float(value)),
        )
        conn.commit()

    def put_many(self, items: Mapping[Pair, float]) -> None:
        rows = [
            (*canonical_pair(i, j), float(value)) for (i, j), value in items.items()
        ]
        if not rows:
            return
        conn = self._connection()
        conn.executemany(
            "INSERT OR REPLACE INTO distances (i, j, d) VALUES (?, ?, ?)", rows
        )
        conn.commit()

    def __len__(self) -> int:
        row = self._connection().execute("SELECT COUNT(*) FROM distances").fetchone()
        return int(row[0])

    def items(self) -> Iterable[Tuple[Pair, float]]:
        for i, j, d in self._connection().execute("SELECT i, j, d FROM distances"):
            yield (int(i), int(j)), float(d)

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None


def open_cache(path: PathLike | None) -> CacheBackend | None:
    """Build a cache backend from a CLI-style path argument.

    ``None`` → no cache, ``":memory:"`` → :class:`MemoryCacheBackend`,
    anything else → :class:`SqliteCacheBackend` at that path.
    """
    if path is None:
        return None
    if os.fspath(path) == ":memory:":
        return MemoryCacheBackend()
    return SqliteCacheBackend(path)
