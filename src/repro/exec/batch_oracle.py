"""BatchOracle — the front end of the batched execution pipeline.

Accepts *sets* of pairs, resolves the genuinely unknown ones through an
executor (serial or threaded), and commits results into the wrapped
:class:`~repro.core.oracle.DistanceOracle` in **canonical-pair sorted
order**, so every downstream consumer (partial graph, bound providers,
traces) observes the same deterministic sequence regardless of how the
calls interleaved on worker threads.

Layered on top is a pluggable write-through persistent cache
(:mod:`repro.exec.cache`): every charged resolution — batched *or* inline —
is written through via an oracle charge listener, and batch lookups consult
the backend before paying, so repeated experiment runs against the same
cache file never re-pay for a pair.

Accounting: each committed fresh pair is charged exactly as a synchronous
call (count, budget, validation), but the simulated latency clock is priced
at ``ceil(fresh / parallelism)`` request latencies per batch — overlapping
calls cost elapsed time, not summed time.  The refund is tracked in
``executor.stats.simulated_seconds_saved``.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

from repro.core.oracle import DistanceOracle, canonical_pair
from repro.exec.cache import CacheBackend
from repro.exec.executor import BaseExecutor, SerialExecutor

Pair = Tuple[int, int]


class BatchOracle:
    """Batched, fault-tolerant, cache-backed access to a distance oracle.

    Parameters
    ----------
    oracle:
        The wrapped accounting oracle.  Its distance function is evaluated
        by the executor (possibly on worker threads) and must therefore be
        thread-safe when paired with :class:`~repro.exec.ThreadedExecutor`.
    executor:
        Resolution strategy; defaults to :class:`~repro.exec.SerialExecutor`
        (identical behaviour to inline calls, plus retry/timeout handling).
    cache:
        Optional persistent :class:`~repro.exec.CacheBackend`.  Consulted
        before dispatching a batch; every charged call on ``oracle`` is
        written through (including inline resolutions made outside this
        wrapper, via a charge listener).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; when given,
        :meth:`instrument` runs at construction (the unified convention).
    """

    def __init__(
        self,
        oracle: DistanceOracle,
        executor: BaseExecutor | None = None,
        cache: CacheBackend | None = None,
        *,
        registry=None,
    ) -> None:
        self.oracle = oracle
        self.executor = executor or SerialExecutor()
        self.cache = cache
        self._batch_seq = 0
        self._cache_hits = 0
        self._preloaded = 0
        if cache is not None:
            oracle.subscribe(self._write_through)
        if registry is not None:
            self.instrument(registry)

    def instrument(self, registry) -> None:
        """Expose cache accounting on a ``repro.obs`` metrics registry.

        Callback-backed (this oracle stays the single writer), and also
        instruments the underlying executor.
        """
        registry.counter(
            "repro_exec_cache_hits_total",
            "Pairs answered from the persistent cache backend.",
            fn=lambda: self._cache_hits,
        )
        registry.counter(
            "repro_exec_preloaded_total",
            "Pairs seeded from the persistent cache at preload.",
            fn=lambda: self._preloaded,
        )
        self.executor.instrument(registry)

    # -- persistent cache ---------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Pairs answered from the persistent backend instead of paid for."""
        return self._cache_hits

    @property
    def preloaded(self) -> int:
        """Pairs seeded into the oracle by :meth:`preload`."""
        return self._preloaded

    def _write_through(self, i: int, j: int, value: float) -> None:
        self.cache.put(i, j, value)

    def preload(self) -> int:
        """Seed the oracle's cache with every persisted pair, free of charge.

        Returns the number of seeded pairs.  Entries whose ids fall outside
        the oracle's universe (a cache shared across datasets) are skipped.
        """
        if self.cache is None:
            return 0
        seeded = 0
        n = self.oracle.n
        for (i, j), value in self.cache.items():
            if 0 <= i < n and 0 <= j < n and self.oracle.seed(i, j, value):
                seeded += 1
        self._preloaded += seeded
        return seeded

    # -- batched resolution -------------------------------------------------

    @property
    def batches(self) -> int:
        """Number of non-empty batches dispatched so far."""
        return self._batch_seq

    def resolve_many(self, pairs: Iterable[Pair]) -> Dict[Pair, float]:
        """Resolve a set of pairs, returning ``{canonical_pair: distance}``.

        Already-resolved pairs are answered from the oracle cache; the
        persistent backend is consulted next; only the remaining misses are
        dispatched to the executor.  Fresh results are committed in sorted
        canonical-pair order — the deterministic-commit contract the
        resolver's bit-identical-output guarantee rests on.
        """
        keys = sorted({canonical_pair(i, j) for i, j in pairs if i != j})
        unknown = [key for key in keys if not self.oracle.is_resolved(*key)]
        misses = unknown
        if self.cache is not None and unknown:
            persisted = self.cache.get_many(unknown)
            for key, value in persisted.items():
                self.oracle.seed(*key, value)
            self._cache_hits += len(persisted)
            misses = [key for key in unknown if key not in persisted]
        if misses:
            self._dispatch(misses)
        out: Dict[Pair, float] = {}
        for key in keys:
            value = self.oracle.peek(*key)
            if value is None:  # pragma: no cover - defensive
                value = self.oracle(*key)
            out[key] = value
        return out

    def _dispatch(self, misses: List[Pair]) -> None:
        """Run one executor batch and commit it deterministically."""
        self._batch_seq += 1
        values, report = self.executor.run(self.oracle.distance_fn, misses)
        oracle = self.oracle
        before = oracle.calls
        with oracle.in_batch(self._batch_seq):
            for key in misses:  # already sorted
                oracle.record(*key, values[key])
        fresh = oracle.calls - before
        oracle.note_retries(report.retries)
        oracle.note_timeouts(report.timeouts)
        cost = oracle.cost_per_call
        if cost > 0 and fresh > 0:
            # Overlapping calls are priced by elapsed request latencies:
            # ceil(fresh / parallelism) instead of fresh.
            waves = math.ceil(fresh / self.executor.parallelism)
            saved = (fresh - waves) * cost
            if saved > 0:
                oracle.refund_simulated(saved)
                self.executor.stats.simulated_seconds_saved += saved

    def close(self) -> None:
        """Shut down the executor and close the persistent backend."""
        self.executor.close()
        if self.cache is not None:
            self.oracle.unsubscribe(self._write_through)
            self.cache.close()

    def __enter__(self) -> "BatchOracle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
