"""Executors: how a batch of oracle calls actually runs.

An executor takes a distance function plus a set of canonical pairs and
returns ``{pair: distance}``, applying the fault-tolerance policy every
production oracle needs — per-call timeout, bounded exponential-backoff
retry, failure accounting.  Two strategies:

* :class:`SerialExecutor` — one call at a time on the calling thread; the
  reference semantics (and the right choice for CPU-bound local metrics).
* :class:`ThreadedExecutor` — a persistent thread pool; calls overlap, so a
  batch of ``B`` slow requests takes roughly ``ceil(B / workers)`` request
  latencies instead of ``B``.  Because worker threads only *evaluate* the
  distance function (no shared-state mutation), results are committed by the
  caller in deterministic order and outputs stay bit-identical to serial.

Timeouts: the threaded executor enforces a real deadline per attempt — an
attempt that overruns is abandoned (its thread finishes in the background
and the result is discarded) and the pair is retried.  The serial executor
cannot preempt a running call; it treats ``TimeoutError`` raised by the
distance function as a timeout, which is how synchronous client libraries
surface the condition.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, List, Tuple

from repro.core.exceptions import OracleResolutionError

Pair = Tuple[int, int]
DistanceFn = Callable[[int, int], float]

#: Default worker count for the threaded executor.
DEFAULT_WORKERS = 8


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: ``base_delay · multiplier^(k-1)``, capped.

    ``max_attempts`` counts the first try plus retries; ``max_attempts=1``
    disables retrying entirely.  The schedule is deterministic (no jitter)
    so failure-injection experiments reproduce exactly.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")

    def delay(self, retry_index: int) -> float:
        """Backoff before the ``retry_index``-th retry (1-based)."""
        if retry_index < 1:
            raise ValueError("retry_index is 1-based")
        return min(self.max_delay, self.base_delay * self.multiplier ** (retry_index - 1))


@dataclass
class ExecutorStats:
    """Cumulative counters for one executor instance."""

    batches: int = 0
    submitted: int = 0
    resolved: int = 0
    retries: int = 0
    timeouts: int = 0
    failures: int = 0
    max_in_flight: int = 0
    largest_batch: int = 0
    real_seconds: float = 0.0
    simulated_seconds_saved: float = 0.0

    def merge(self, other: "ExecutorStats") -> "ExecutorStats":
        """Combine two counters (sums; maxima for the high-water marks)."""
        return ExecutorStats(
            batches=self.batches + other.batches,
            submitted=self.submitted + other.submitted,
            resolved=self.resolved + other.resolved,
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            failures=self.failures + other.failures,
            max_in_flight=max(self.max_in_flight, other.max_in_flight),
            largest_batch=max(self.largest_batch, other.largest_batch),
            real_seconds=self.real_seconds + other.real_seconds,
            simulated_seconds_saved=self.simulated_seconds_saved
            + other.simulated_seconds_saved,
        )

    def copy(self) -> "ExecutorStats":
        return replace(self)


@dataclass(frozen=True)
class BatchReport:
    """What happened while running one batch."""

    size: int
    retries: int
    timeouts: int
    elapsed_seconds: float


class BaseExecutor:
    """Shared retry bookkeeping for the concrete executors."""

    name = "base"
    #: Calls that can overlap; governs the simulated-latency pricing
    #: ``ceil(batch / parallelism)`` applied by :class:`BatchOracle`.
    parallelism = 1

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> None:
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        self.retry = retry or RetryPolicy()
        self.timeout = timeout
        self.stats = ExecutorStats()
        self._batch_size_hist = None

    def instrument(self, registry) -> None:
        """Expose executor accounting on a ``repro.obs`` metrics registry.

        ``ExecutorStats`` remains the single writer; every counter and
        gauge is callback-backed so the registry and ``self.stats`` can
        never disagree, whichever moment either is read.  Batch sizes are
        additionally observed into a histogram at dispatch time.
        """
        stats = self.stats
        registry.counter(
            "repro_exec_batches_total", "Executor batches dispatched.",
            fn=lambda: stats.batches,
        )
        registry.counter(
            "repro_exec_submitted_total", "Pair evaluations submitted to executors.",
            fn=lambda: stats.submitted,
        )
        registry.counter(
            "repro_exec_resolved_total", "Pair evaluations completed by executors.",
            fn=lambda: stats.resolved,
        )
        registry.counter(
            "repro_exec_retries_total", "Evaluations retried after a failure.",
            fn=lambda: stats.retries,
        )
        registry.counter(
            "repro_exec_timeouts_total", "Evaluations that hit the per-call timeout.",
            fn=lambda: stats.timeouts,
        )
        registry.counter(
            "repro_exec_failures_total", "Evaluations that exhausted every retry.",
            fn=lambda: stats.failures,
        )
        registry.counter(
            "repro_exec_seconds_total", "Wall-clock seconds spent inside batches.",
            fn=lambda: stats.real_seconds,
        )
        registry.gauge(
            "repro_exec_max_in_flight", "Peak concurrently in-flight evaluations.",
            fn=lambda: stats.max_in_flight,
        )
        registry.gauge(
            "repro_exec_largest_batch", "Largest batch dispatched so far.",
            fn=lambda: stats.largest_batch,
        )
        from repro.obs.registry import BATCH_SIZE_BUCKETS

        self._batch_size_hist = registry.histogram(
            "repro_exec_batch_size",
            BATCH_SIZE_BUCKETS,
            help_text="Distribution of executor batch sizes.",
        )

    def run(self, fn: DistanceFn, pairs: Iterable[Pair]) -> Tuple[Dict[Pair, float], BatchReport]:
        """Evaluate ``fn`` on every pair, returning values plus a report."""
        raise NotImplementedError

    def warm(self) -> None:
        """Pre-create any lazy resources (no-op for serial).

        Long-lived callers (the service engine) warm the executor at
        construction so the first batch doesn't pay pool start-up, and so
        lazy initialisation never races concurrent submitters.
        """

    def close(self) -> None:
        """Release executor resources (no-op for serial)."""

    def __enter__(self) -> "BaseExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- shared bookkeeping -------------------------------------------------

    def _start_batch(self, pairs: List[Pair]) -> float:
        self.stats.batches += 1
        self.stats.submitted += len(pairs)
        self.stats.largest_batch = max(self.stats.largest_batch, len(pairs))
        if self._batch_size_hist is not None and pairs:
            self._batch_size_hist.observe(len(pairs))
        return time.perf_counter()

    def _finish_batch(
        self, started: float, size: int, retries: int, timeouts: int
    ) -> BatchReport:
        elapsed = time.perf_counter() - started
        self.stats.resolved += size
        self.stats.real_seconds += elapsed
        return BatchReport(
            size=size, retries=retries, timeouts=timeouts, elapsed_seconds=elapsed
        )


class SerialExecutor(BaseExecutor):
    """Resolve pairs one at a time with retry/backoff on the calling thread."""

    name = "serial"
    parallelism = 1

    def run(self, fn: DistanceFn, pairs: Iterable[Pair]) -> Tuple[Dict[Pair, float], BatchReport]:
        pairs = list(pairs)
        started = self._start_batch(pairs)
        self.stats.max_in_flight = max(self.stats.max_in_flight, min(1, len(pairs)))
        results: Dict[Pair, float] = {}
        retries = timeouts = 0
        for pair in pairs:
            attempt = 1
            while True:
                try:
                    results[pair] = fn(*pair)
                    break
                except Exception as exc:
                    if isinstance(exc, TimeoutError):
                        timeouts += 1
                        self.stats.timeouts += 1
                    if attempt >= self.retry.max_attempts:
                        self.stats.failures += 1
                        raise OracleResolutionError(pair, attempt) from exc
                    retries += 1
                    self.stats.retries += 1
                    delay = self.retry.delay(attempt)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
        return results, self._finish_batch(started, len(pairs), retries, timeouts)


class ThreadedExecutor(BaseExecutor):
    """Resolve pairs concurrently on a persistent thread pool.

    Worker threads run the distance function only; no oracle or graph state
    is touched off the calling thread.  Each attempt has an optional real
    deadline (``timeout`` seconds); expired attempts are abandoned and
    retried with backoff (the backoff sleep runs *in the worker*, so the
    coordinator never blocks on it).
    """

    name = "threaded"

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        super().__init__(retry=retry, timeout=timeout)
        self.workers = workers
        self.parallelism = workers
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-oracle"
            )
        return self._pool

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def run(self, fn: DistanceFn, pairs: Iterable[Pair]) -> Tuple[Dict[Pair, float], BatchReport]:
        pairs = list(pairs)
        started = self._start_batch(pairs)
        if not pairs:
            return {}, self._finish_batch(started, 0, 0, 0)
        pool = self._ensure_pool()
        results: Dict[Pair, float] = {}
        retries = timeouts = 0
        # future -> (pair, attempt, start-time cell written by the worker).
        # The deadline clock starts when the call *begins executing*, not at
        # submission, so tasks queued behind a full pool never expire early.
        pending: Dict[Future, Tuple[Pair, int, dict]] = {}

        def submit(pair: Pair, attempt: int, backoff: float) -> None:
            cell: dict = {"started": None}

            def task() -> float:
                if backoff > 0:
                    time.sleep(backoff)
                cell["started"] = time.monotonic()
                return fn(*pair)

            pending[pool.submit(task)] = (pair, attempt, cell)

        def retry_or_fail(pair: Pair, attempt: int, exc: BaseException) -> None:
            nonlocal retries
            if attempt >= self.retry.max_attempts:
                self.stats.failures += 1
                for future in pending:
                    future.cancel()
                raise OracleResolutionError(pair, attempt) from exc
            retries += 1
            self.stats.retries += 1
            submit(pair, attempt + 1, self.retry.delay(attempt))

        for pair in pairs:
            submit(pair, 1, 0.0)
        while pending:
            self.stats.max_in_flight = max(self.stats.max_in_flight, len(pending))
            poll = 0.05 if self.timeout is None else min(0.05, self.timeout / 4)
            done, _ = wait(set(pending), timeout=poll, return_when=FIRST_COMPLETED)
            for future in done:
                pair, attempt, _ = pending.pop(future)
                exc = future.exception()
                if exc is None:
                    results[pair] = future.result()
                    continue
                if isinstance(exc, TimeoutError):
                    timeouts += 1
                    self.stats.timeouts += 1
                retry_or_fail(pair, attempt, exc)
            if self.timeout is not None:
                now = time.monotonic()
                expired = [
                    future
                    for future, (_, _, cell) in pending.items()
                    if cell["started"] is not None
                    and now >= cell["started"] + self.timeout
                ]
                for future in expired:
                    pair, attempt, _ = pending.pop(future)
                    # The worker may still be running; its eventual result is
                    # discarded — only committed values ever reach the oracle.
                    future.cancel()
                    timeouts += 1
                    self.stats.timeouts += 1
                    retry_or_fail(pair, attempt, TimeoutError(f"attempt overran {self.timeout}s"))
        return results, self._finish_batch(started, len(pairs), retries, timeouts)


def _evaluate_chunk(
    fn: DistanceFn, pairs: List[Pair]
) -> Tuple[Dict[Pair, float], List[Tuple[Pair, str, bool]]]:
    """Worker-side body of :class:`ProcessExecutor`: evaluate one chunk.

    Module-level so it pickles by reference into spawn-started workers.
    Failures come back as ``(pair, repr(exc), is_timeout)`` rather than
    raising, so one bad pair never poisons its chunk-mates.
    """
    results: Dict[Pair, float] = {}
    failures: List[Tuple[Pair, str, bool]] = []
    for pair in pairs:
        try:
            results[pair] = fn(*pair)
        except Exception as exc:
            failures.append((pair, repr(exc), isinstance(exc, TimeoutError)))
    return results, failures


class ProcessExecutor(BaseExecutor):
    """Resolve pairs on a ``ProcessPoolExecutor`` — true multi-core evaluation.

    The escape hatch from the GIL for CPU-bound distance functions: a batch
    is split into at most ``workers`` chunks, each shipped whole to a
    spawn-started worker process (batch-granularity dispatch amortises the
    pickle round-trip).  Both the distance function and the pair values
    must pickle — build the function from a
    :class:`repro.spaces.handles.SpaceHandle` (each worker rebuilds and
    memoises the space on first use) rather than closing over live
    objects.

    Retry policy runs on the calling side: failed pairs from any chunk are
    re-dispatched with backoff, and exhausting ``retry.max_attempts``
    raises :class:`~repro.core.exceptions.OracleResolutionError`.  Like
    :class:`SerialExecutor`, there is no hard preemption of a running
    call; a distance function that raises ``TimeoutError`` (how
    synchronous client libraries surface deadlines) is accounted as a
    timeout and retried.
    """

    name = "process"

    def __init__(
        self,
        workers: int = DEFAULT_WORKERS,
        retry: RetryPolicy | None = None,
        timeout: float | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        super().__init__(retry=retry, timeout=timeout)
        self.workers = workers
        self.parallelism = workers
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Spawn, not fork: the engine runs threads, and a forked child of
            # a threaded parent inherits locks in undefined states.
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return self._pool

    def warm(self) -> None:
        self._ensure_pool()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    @staticmethod
    def _chunk(pairs: List[Pair], chunks: int) -> List[List[Pair]]:
        size, extra = divmod(len(pairs), chunks)
        out: List[List[Pair]] = []
        start = 0
        for k in range(chunks):
            stop = start + size + (1 if k < extra else 0)
            if stop > start:
                out.append(pairs[start:stop])
            start = stop
        return out

    def run(self, fn: DistanceFn, pairs: Iterable[Pair]) -> Tuple[Dict[Pair, float], BatchReport]:
        pairs = list(pairs)
        started = self._start_batch(pairs)
        if not pairs:
            return {}, self._finish_batch(started, 0, 0, 0)
        pool = self._ensure_pool()
        results: Dict[Pair, float] = {}
        retries = timeouts = 0
        outstanding: List[Tuple[Pair, int]] = [(pair, 1) for pair in pairs]
        while outstanding:
            todo = [pair for pair, _ in outstanding]
            attempts = {pair: attempt for pair, attempt in outstanding}
            chunks = self._chunk(todo, min(self.workers, len(todo)))
            self.stats.max_in_flight = max(self.stats.max_in_flight, len(todo))
            futures = [pool.submit(_evaluate_chunk, fn, chunk) for chunk in chunks]
            outstanding = []
            backoff = 0.0
            for future in futures:
                chunk_results, chunk_failures = future.result()
                results.update(chunk_results)
                for pair, message, is_timeout in chunk_failures:
                    if is_timeout:
                        timeouts += 1
                        self.stats.timeouts += 1
                    attempt = attempts[pair]
                    if attempt >= self.retry.max_attempts:
                        self.stats.failures += 1
                        raise OracleResolutionError(pair, attempt) from RuntimeError(
                            f"worker reported: {message}"
                        )
                    retries += 1
                    self.stats.retries += 1
                    backoff = max(backoff, self.retry.delay(attempt))
                    outstanding.append((pair, attempt + 1))
            if outstanding and backoff > 0:
                time.sleep(backoff)
        return results, self._finish_batch(started, len(pairs), retries, timeouts)


def make_executor(
    name: str,
    workers: int = DEFAULT_WORKERS,
    retry: RetryPolicy | None = None,
    timeout: float | None = None,
) -> BaseExecutor:
    """Build an executor by CLI name (``"serial"``, ``"threaded"``, ``"process"``)."""
    key = name.lower()
    if key == "serial":
        return SerialExecutor(retry=retry, timeout=timeout)
    if key == "threaded":
        return ThreadedExecutor(workers=workers, retry=retry, timeout=timeout)
    if key == "process":
        return ProcessExecutor(workers=workers, retry=retry, timeout=timeout)
    raise ValueError(
        f"unknown executor {name!r}; choose 'serial', 'threaded' or 'process'"
    )
