"""Batched, fault-tolerant oracle execution pipeline.

The paper's cost model treats every oracle call as a slow external request.
The framework core (:mod:`repro.core`) minimises *how many* calls are made;
this subsystem minimises *how long the remaining calls take* by resolving
whole frontiers of inconclusive pairs concurrently, with per-call timeouts,
bounded exponential-backoff retry, and a write-through persistent cache so
repeated experiment runs never re-pay for a pair.

Layering::

    algorithms  ──►  SmartResolver.resolve_many / knearest / argmin
                         │  (frontier of inconclusive pairs)
                         ▼
                     BatchOracle          deterministic sorted commit
                         │                into DistanceOracle + graph
            ┌────────────┴────────────┐
            ▼                         ▼
    SerialExecutor /          CacheBackend (memory / SQLite)
    ThreadedExecutor          write-through persistence

Outputs stay bit-identical to the sequential path: workers only *evaluate*
distances; every commit (accounting, graph insert, bound update) happens on
the calling thread in canonical-pair sorted order.
"""

from repro.exec.batch_oracle import BatchOracle
from repro.exec.cache import (
    CacheBackend,
    MemoryCacheBackend,
    SqliteCacheBackend,
    open_cache,
)
from repro.exec.executor import (
    BatchReport,
    ExecutorStats,
    ProcessExecutor,
    RetryPolicy,
    SerialExecutor,
    ThreadedExecutor,
    make_executor,
)

__all__ = [
    "BatchOracle",
    "BatchReport",
    "CacheBackend",
    "ExecutorStats",
    "MemoryCacheBackend",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "SqliteCacheBackend",
    "ThreadedExecutor",
    "make_executor",
    "open_cache",
]
