"""Spatial scenario: minimum spanning tree over driving distances.

This mirrors the paper's SF-POI experiments: points of interest whose
pairwise distances come from a (priced!) maps API.  We simulate the API
with a road-network metric (see ``repro.spaces.roadnet``), price each call,
and show how the Tri Scheme with a LAESA bootstrap cuts both the bill and
the wall-clock completion time, while LAESA/TLAESA-only runs pay more.

Run with:  python examples/road_trip_mst.py
"""

from repro.datasets import sf_poi_space
from repro.harness import print_table, run_experiment

#: Simulated per-request latency of the maps API, in seconds.
API_SECONDS_PER_CALL = 0.05

#: Per-request price in dollars (Google's distance-matrix tier, roughly).
DOLLARS_PER_CALL = 0.005


def main() -> None:
    space = sf_poi_space(n=150, seed=7)  # road-network driving metric
    print(f"road network: {space.n} POIs, {space.num_roads} road segments\n")

    configurations = [
        ("vanilla (no plug)", "none", False),
        ("Tri Scheme (no bootstrap)", "tri", False),
        ("Tri Scheme + LAESA bootstrap", "tri", True),
        ("LAESA", "laesa", False),
        ("TLAESA", "tlaesa", False),
    ]

    rows = []
    reference_weight = None
    for label, provider, boot in configurations:
        record = run_experiment(
            space,
            "prim",
            provider,
            landmark_bootstrap=boot,
            oracle_cost=API_SECONDS_PER_CALL,
        )
        weight = record.result.total_weight
        if reference_weight is None:
            reference_weight = weight
        assert abs(weight - reference_weight) < 1e-9, "MST must be identical"
        rows.append(
            [
                label,
                record.bootstrap_calls,
                record.algorithm_calls,
                record.total_calls,
                round(record.total_calls * DOLLARS_PER_CALL, 2),
                round(record.completion_seconds, 2),
            ]
        )

    print_table(
        ["configuration", "bootstrap", "algorithm", "total calls", "API $", "time (s)"],
        rows,
        title=f"Prim's MST over {space.n} POIs (identical tree, weight "
        f"{reference_weight:.3f})",
    )
    print("\nEvery configuration returns the exact same spanning tree; only the")
    print("number of API requests — and therefore the bill — differs.")


if __name__ == "__main__":
    main()
