"""Bioinformatics scenario: medoid clustering of DNA-like sequences.

Edit distance on sequences is a classic expensive oracle — each call is an
``O(len^2)`` dynamic program.  We cluster mutated families of sequences with
PAM and CLARANS and show the Tri Scheme recovering the same medoids with a
fraction of the edit-distance computations.

Run with:  python examples/dna_clustering.py
"""

import numpy as np

from repro import EditDistanceSpace
from repro.harness import print_table, run_experiment
from repro.spaces.strings import random_strings

NUM_SEQUENCES = 90
SEQUENCE_LENGTH = 120
NUM_FAMILIES = 4


def main() -> None:
    rng = np.random.default_rng(42)
    sequences = random_strings(
        NUM_SEQUENCES,
        length=SEQUENCE_LENGTH,
        mutation_rate=0.08,
        num_seeds=NUM_FAMILIES,
        rng=rng,
    )
    space = EditDistanceSpace(sequences)
    print(
        f"{NUM_SEQUENCES} sequences of length {SEQUENCE_LENGTH} "
        f"from {NUM_FAMILIES} mutated families\n"
    )

    rows = []
    for algorithm, kwargs in (
        ("pam", {"l": NUM_FAMILIES, "seed": 1}),
        ("clarans", {"l": NUM_FAMILIES, "seed": 1, "num_local": 1, "max_neighbors": 40}),
    ):
        vanilla = run_experiment(space, algorithm, "none", algorithm_kwargs=kwargs)
        tri = run_experiment(space, algorithm, "tri", algorithm_kwargs=kwargs)
        assert tri.result.medoids == vanilla.result.medoids, "medoids must match"
        save = 100 * (vanilla.total_calls - tri.total_calls) / vanilla.total_calls
        rows.append(
            [
                algorithm.upper(),
                vanilla.total_calls,
                tri.total_calls,
                f"{save:.1f}%",
                round(tri.result.cost, 1),
            ]
        )

    print_table(
        ["algorithm", "vanilla calls", "Tri calls", "saved", "clustering cost"],
        rows,
        title="Edit-distance clustering (identical medoids)",
    )

    # Show the recovered family structure.
    tri_run = run_experiment(
        space, "pam", "tri", algorithm_kwargs={"l": NUM_FAMILIES, "seed": 1}
    )
    members = tri_run.result.cluster_members()
    print("\ncluster sizes:", sorted(len(v) for v in members.values()))


if __name__ == "__main__":
    main()
