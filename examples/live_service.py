"""A live service: object churn against a warm engine, without rebuilds.

This demo runs the dynamic subsystem end to end on a mutable object set:

1. **Standing queries** — a kNN-graph subscription stays registered in the
   engine and is always current; clients consume *deltas* instead of
   re-running the query.
2. **Incremental maintenance** — each churn batch (removes + inserts) is
   absorbed by patching the partial graph and the bound provider; the
   strong-call cost per batch is a small fraction of the initial build.
3. **Exactness survives churn** — after all batches, the standing result
   is byte-identical to what a fresh engine computes on the surviving set.
4. **The wire protocol** — the same mutations flow through a served
   engine's ``insert`` / ``remove`` / ``subscribe`` / ``deltas`` verbs.

Run with:  python examples/live_service.py
"""

import tempfile
from pathlib import Path

from repro.datasets import flickr_space
from repro.dynamic import DynamicObjectSet, churn_batch
from repro.service import ProximityEngine, ProximityServer, send_request

N = 64
K = 4
BATCHES = 3
FRACTION = 0.10


def main() -> None:
    # Wrap a frozen dataset as a mutable view, holding back a reserve of
    # payloads so inserts bring genuinely new objects into the live set.
    base = flickr_space(n=N, dim=4, seed=23)
    per_batch = max(1, round(FRACTION * N / 2))
    reserve = list(range(N - BATCHES * per_batch, N))
    objects = DynamicObjectSet.wrap(base, initial=N - len(reserve))

    with ProximityEngine.for_space(
        objects, provider="tri", job_workers=1
    ) as engine:
        sub = engine.subscribe_knng(K)
        build = engine.oracle.calls
        print(f"standing {K}-NN graph over {objects.num_alive} objects "
              f"built for {build} strong calls")

        # 1+2. Churn batches: removals recycle slots, inserts consume the
        # reserve; the subscription refreshes bounds-first each time.
        seen_seq = 0
        for batch_no in range(BATCHES):
            fresh = [reserve.pop(0) for _ in range(per_batch)]
            batch = churn_batch(objects, fraction=FRACTION,
                                seed=40 + batch_no, insert_payloads=fresh)
            result = engine.apply_mutations(batch)
            deltas = engine.subscription_deltas(sub.sub_id, since=seen_seq)
            seen_seq = max((d.seq for d in deltas), default=seen_seq)
            touched = sum(len(d.entered) + len(d.left) for d in deltas)
            print(f"batch {batch_no}: -{len(result.removed_ids)} "
                  f"+{len(result.inserted_ids)} objects, "
                  f"{result.strong_calls} strong calls, "
                  f"{result.edges_dropped} edges dropped, "
                  f"{touched} standing entries touched")

        standing = engine.subscriptions.get(sub.sub_id).result
        final_calls = engine.oracle.calls

    # 3. Exactness: a cold engine on the surviving set must agree.
    alive = objects.alive_ids()
    survivors = DynamicObjectSet(
        [objects.payload(i) for i in alive],
        lambda a, b: base.distance(a, b),
        diameter=base.diameter_bound(),
    )
    with ProximityEngine.for_space(
        survivors, provider="tri", job_workers=1
    ) as fresh_engine:
        fresh_sub = fresh_engine.subscribe_knng(K)
        fresh = fresh_engine.subscriptions.get(fresh_sub.sub_id).result
        rebuild = fresh_engine.oracle.calls
    pos = {slot: p for p, slot in enumerate(alive)}
    mapped = {pos[u]: [(d, pos[v]) for d, v in row]
              for u, row in standing.items()}
    assert mapped == {u: list(row) for u, row in fresh.items()}
    maintained = final_calls - build
    print(f"maintenance total {maintained} strong calls vs {rebuild} for a "
          f"cold rebuild ({rebuild / max(1, maintained):.1f}x saved), "
          f"answers identical")

    # 4. The same verbs over a served engine's socket.
    mutable = DynamicObjectSet.wrap(flickr_space(n=24, dim=4, seed=9),
                                    initial=20)
    with ProximityEngine.for_space(
        mutable, provider="tri", job_workers=1
    ) as served, tempfile.TemporaryDirectory() as tmp:
        sock = str(Path(tmp) / "live.sock")
        with ProximityServer(served, sock):
            sub_reply = send_request(
                sock, {"op": "subscribe", "kind": "knn", "query": 0, "k": 3}
            )
            victim = int(sub_reply["result"]["neighbors"][0][1])
            send_request(sock, {"op": "remove", "id": victim})
            recycled = send_request(sock, {"op": "insert", "payload": 20})
            polled = send_request(
                sock,
                {"op": "deltas", "sub_id": sub_reply["sub_id"], "since": 0},
            )
            print(f"over the wire: removed neighbor {victim}, insert "
                  f"recycled slot {recycled['id']}, client polled "
                  f"{len(polled['deltas'])} delta(s)")

    print("the engine never rebuilt; the clients never re-queried")


if __name__ == "__main__":
    main()
