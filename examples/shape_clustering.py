"""Computer-vision scenario: clustering shapes under Hausdorff distance.

Each object is a whole *point set* (a sampled 2-D shape); comparing two
shapes runs a Hausdorff computation — two nearest-neighbour sweeps — which
is exactly the heavyweight comparison the paper's framework targets.  We
cluster rings, crosses, and blobs with single-linkage and recover the shape
families with a fraction of the comparisons.

Run with:  python examples/shape_clustering.py
"""

import numpy as np

from repro import SmartResolver, TriScheme, bootstrap_with_landmarks, single_linkage
from repro.spaces.sets import HausdorffSpace

SHAPES_PER_FAMILY = 25
POINTS_PER_SHAPE = 40


def make_shape(kind: str, rng: np.random.Generator) -> np.ndarray:
    """Sample one noisy shape of the given family (centred at the origin)."""
    t = rng.uniform(0, 2 * np.pi, size=POINTS_PER_SHAPE)
    if kind == "ring":
        base = np.column_stack((np.cos(t), np.sin(t)))
    elif kind == "cross":
        half = POINTS_PER_SHAPE // 2
        xs = np.concatenate((rng.uniform(-1, 1, half), np.zeros(POINTS_PER_SHAPE - half)))
        ys = np.concatenate((np.zeros(half), rng.uniform(-1, 1, POINTS_PER_SHAPE - half)))
        base = np.column_stack((xs, ys))
    elif kind == "blob":
        base = rng.normal(scale=0.12, size=(POINTS_PER_SHAPE, 2))
    else:
        raise ValueError(kind)
    return base + rng.normal(scale=0.03, size=base.shape)


def main() -> None:
    rng = np.random.default_rng(11)
    families = ["ring", "cross", "blob"]
    shapes, labels = [], []
    for family in families:
        for _ in range(SHAPES_PER_FAMILY):
            shapes.append(make_shape(family, rng))
            labels.append(family)
    space = HausdorffSpace(shapes)
    n = space.n
    print(f"{n} shapes ({SHAPES_PER_FAMILY} each of {', '.join(families)}), "
          f"{POINTS_PER_SHAPE} points per shape\n")

    # Vanilla single-linkage: every pair compared.
    vanilla_oracle = space.oracle()
    vanilla = single_linkage(SmartResolver(vanilla_oracle))

    # Framework run: identical dendrogram, far fewer Hausdorff computations.
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    bootstrap_with_landmarks(resolver, 6)   # 6 landmark shapes seed triangles
    result = single_linkage(resolver)
    assert result.heights() == vanilla.heights()

    saved = 100 * (vanilla_oracle.calls - oracle.calls) / vanilla_oracle.calls
    print(f"vanilla Hausdorff computations : {vanilla_oracle.calls:,}")
    print(f"framework computations         : {oracle.calls:,}  ({saved:.1f}% saved)")

    clusters = result.cut_k(len(families))
    print(f"\nclusters at k={len(families)}:")
    pure = 0
    for cluster in clusters:
        kinds = sorted({labels[obj] for obj in cluster})
        pure += len(kinds) == 1
        print(f"  size {len(cluster):2d}  families: {', '.join(kinds)}")
    print(f"\n{pure}/{len(clusters)} clusters are single-family")


if __name__ == "__main__":
    main()
