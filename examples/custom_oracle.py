"""Bring-your-own oracle: plugging an arbitrary distance function in.

Any symmetric, triangle-inequality-respecting function over integer ids
works — here a toy "remote service" with artificial latency and a hard call
budget, demonstrating the pieces a production integration would use:

* ``DistanceOracle`` for accounting, caching, and budget enforcement;
* ``SmartResolver`` predicates for re-authoring your own algorithm;
* bound providers as drop-in plugins.

Run with:  python examples/custom_oracle.py
"""

import numpy as np

from repro import DistanceOracle, SmartResolver, TriScheme
from repro.core.exceptions import BudgetExceededError

N = 60


def make_remote_service(seed: int = 0):
    """A pretend third-party API: Euclidean distance plus bookkeeping."""
    rng = np.random.default_rng(seed)
    coords = rng.uniform(0, 1, size=(N, 2))

    def remote_distance(i: int, j: int) -> float:
        # In real life: an HTTP round-trip you pay for.
        return float(np.linalg.norm(coords[i] - coords[j]))

    return remote_distance


def nearest_pair(resolver: SmartResolver) -> tuple[int, int, float]:
    """A hand-written proximity routine using re-authored comparisons."""
    best = (0, 1)
    for i in range(N):
        for j in range(i + 1, N):
            if (i, j) == best:
                continue
            # The re-authored IF: decided from bounds whenever possible.
            if resolver.less((i, j), best):
                best = (i, j)
    return best[0], best[1], resolver.distance(*best)


def main() -> None:
    service = make_remote_service()

    oracle = DistanceOracle(service, N, cost_per_call=0.02, budget=2000)
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, max_distance=float(np.sqrt(2)))

    try:
        i, j, d = nearest_pair(resolver)
    except BudgetExceededError:
        print("budget exhausted — raise the cap or use a tighter bounder")
        return

    total_pairs = N * (N - 1) // 2
    print(f"closest pair          : ({i}, {j}) at distance {d:.4f}")
    print(f"API calls used        : {oracle.calls:,} / {total_pairs:,} pairs")
    print(f"simulated API latency : {oracle.simulated_seconds:.2f}s")
    print(f"comparisons pruned    : {resolver.stats.decided_by_bounds:,}")
    print(f"prune rate            : {resolver.stats.prune_rate:.1%}")


if __name__ == "__main__":
    main()
