"""Batched, fault-tolerant oracle execution with a persistent cache.

Real oracles are remote services: calls have latency worth overlapping,
they occasionally fail or hang, and every answer is worth persisting.  This
example wires a :class:`repro.exec.BatchOracle` under a
:class:`SmartResolver` to build a kNN graph three ways:

1. serial executor — the reference run;
2. threaded executor — same calls, same output, a fraction of the latency;
3. threaded executor against a flaky oracle with a persistent SQLite cache
   — transient faults are retried invisibly and a second "session" replays
   from the cache for free.

Run with:  python examples/batched_oracle.py
"""

import random
import tempfile
from pathlib import Path

from repro import SmartResolver, TriScheme, knn_graph
from repro.core.oracle import DistanceOracle
from repro.datasets import sf_poi_space
from repro.exec import BatchOracle, SqliteCacheBackend, ThreadedExecutor, make_executor

N = 80
K = 4
COST = 0.2  # simulated seconds per oracle call


def build(space, distance_fn, executor, cache=None):
    oracle = DistanceOracle(distance_fn, space.n, cost_per_call=COST)
    with BatchOracle(oracle, executor=executor, cache=cache) as batcher:
        batcher.preload()
        resolver = SmartResolver(oracle, batcher=batcher)
        resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
        graph = knn_graph(resolver, k=K)
    return graph, oracle, batcher


def main() -> None:
    space = sf_poi_space(n=N, seed=5, road=False)

    # --- 1. serial reference ----------------------------------------------
    serial_graph, serial_oracle, _ = build(
        space, space.distance, make_executor("serial")
    )
    print(f"serial:   {serial_oracle.calls:,} calls, "
          f"{serial_oracle.simulated_seconds:.1f}s simulated latency")

    # --- 2. threaded: identical output, overlapped latency ----------------
    threaded_graph, threaded_oracle, batcher = build(
        space, space.distance, ThreadedExecutor(workers=8)
    )
    assert all(
        threaded_graph.neighbor_ids(u) == serial_graph.neighbor_ids(u)
        for u in range(space.n)
    )
    assert threaded_oracle.calls == serial_oracle.calls
    print(f"threaded: {threaded_oracle.calls:,} calls (identical), "
          f"{threaded_oracle.simulated_seconds:.1f}s simulated latency "
          f"({batcher.executor.stats.simulated_seconds_saved:.1f}s refunded "
          f"by overlapping)")

    # --- 3. flaky oracle + retries + persistent cache ---------------------
    rng = random.Random(7)
    attempts = {}

    def flaky_distance(i, j):
        # One call in ten times out on its first attempt.
        key = (min(i, j), max(i, j))
        first = key not in attempts
        attempts[key] = True
        if first and rng.random() < 0.1:
            raise TimeoutError(f"simulated outage for {key}")
        return space.distance(i, j)

    db = Path(tempfile.gettempdir()) / "repro_batched_oracle.db"
    db.unlink(missing_ok=True)

    flaky_graph, flaky_oracle, _ = build(
        space, flaky_distance, ThreadedExecutor(workers=8),
        cache=SqliteCacheBackend(db),
    )
    assert all(
        flaky_graph.neighbor_ids(u) == serial_graph.neighbor_ids(u)
        for u in range(space.n)
    )
    print(f"flaky:    {flaky_oracle.retries} transient timeouts retried, "
          f"output still identical; {flaky_oracle.calls:,} answers "
          f"persisted to {db}")

    # A new session replays every persisted distance free of charge.
    resumed_graph, resumed_oracle, resumed_batcher = build(
        space, space.distance, ThreadedExecutor(workers=8),
        cache=SqliteCacheBackend(db),
    )
    assert all(
        resumed_graph.neighbor_ids(u) == serial_graph.neighbor_ids(u)
        for u in range(space.n)
    )
    print(f"resumed:  {resumed_batcher.preloaded:,} distances preloaded, "
          f"{resumed_oracle.calls:,} new calls, "
          f"{resumed_oracle.simulated_seconds:.1f}s simulated latency")


if __name__ == "__main__":
    main()
