"""Resumable sessions: never pay twice for the same distance.

When the oracle is a metered API, the resolved-distance graph is an asset.
This example runs an MST in "session 1", persists the graph, then in
"session 2" resumes from disk and runs a *different* workload (a kNN graph
and density clustering) on top of the already-paid distances.

Run with:  python examples/resumable_session.py
"""

import tempfile
from pathlib import Path

from repro import SmartResolver, TriScheme, knn_graph, prim_mst, save_graph
from repro.algorithms.dbscan import dbscan
from repro.core.persistence import resume_resolver
from repro.datasets import sf_poi_space


def main() -> None:
    space = sf_poi_space(n=120, seed=5, road=False)
    archive = Path(tempfile.gettempdir()) / "repro_session.npz"

    # --- session 1: build an MST, persist everything we paid for ----------
    oracle1 = space.oracle()
    resolver1 = SmartResolver(oracle1)
    resolver1.bounder = TriScheme(resolver1.graph, space.diameter_bound())
    mst = prim_mst(resolver1)
    save_graph(resolver1.graph, archive)
    print(f"session 1: MST weight {mst.total_weight:.3f} "
          f"for {oracle1.calls:,} oracle calls -> saved to {archive}")

    # --- session 2: resume, run new workloads on the warm graph ------------
    oracle2 = space.oracle()
    resolver2 = resume_resolver(oracle2, archive)
    resolver2.bounder = TriScheme(resolver2.graph, space.diameter_bound())

    knng = knn_graph(resolver2, k=5)
    knng_calls = oracle2.calls
    clusters = dbscan(resolver2, eps=0.08, min_pts=4)
    print(f"session 2: 5-NN graph cost {knng_calls:,} new calls "
          f"(cold start would pay ~{oracle1.calls:,}+)")
    print(f"session 2: DBSCAN found {clusters.num_clusters} clusters, "
          f"{clusters.noise_count} noise points; "
          f"total new calls {oracle2.calls:,}")

    # Exactness is untouched by resumption.
    fresh = SmartResolver(space.oracle())
    fresh.bounder = TriScheme(fresh.graph, space.diameter_bound())
    fresh_knng = knn_graph(fresh, k=5)
    assert all(
        knng.neighbor_ids(u) == fresh_knng.neighbor_ids(u) for u in range(space.n)
    )
    print("outputs identical to a fresh run — resumption is purely a cost saver")


if __name__ == "__main__":
    main()
