"""Two-tier oracles: a cheap weak estimate bounding an expensive metric.

The setup from arXiv 2310.15863, mapped onto the paper's re-authoring
framework: a *weak* oracle answers instantly with a declared multiplicative
error band (here, crow-flies distance under a road metric whose detours
are at least ``lo``×), the band becomes a bound provider that tightens the
resolver's intervals, and the *strong* oracle — the real routing call —
is only paid for pairs the bounds leave inconclusive.

The answers are byte-identical to a strong-only run; only the bill shrinks.

Run with:  python examples/weak_strong_oracle.py
"""

from repro import SmartResolver, TieredOracle, knn_graph
from repro.datasets import sf_poi_space

N = 96
K = 5


def main() -> None:
    space = sf_poi_space(n=N, road=True)  # road metric, expensive per call

    # --- strong-only baseline ---------------------------------------------
    oracle = space.oracle()
    baseline = knn_graph(SmartResolver(oracle), k=K)
    baseline_calls = oracle.calls
    print(f"strong-only: {baseline_calls:,} routing calls")

    # --- tiered: crow-flies weak oracle under the same metric -------------
    oracle = space.oracle()
    weak = space.weak_oracle()  # straight-line distance, band (detour_lo, inf)
    print(f"weak tier:   {weak.name!r}, band "
          f"[{weak.band.lo_factor:g}·e, {weak.band.hi_factor:g}·e]")

    with TieredOracle(oracle, weak) as tiered:
        resolver = SmartResolver(oracle)
        tiered.attach(resolver, max_distance=space.diameter_bound())
        tiered_graph = knn_graph(resolver, k=K)

        assert tiered_graph == baseline  # exactness is non-negotiable
        stats = resolver.collect_stats()
        print(f"tiered:      {tiered.strong_calls:,} routing calls, "
              f"{tiered.weak_calls:,} weak estimates, "
              f"{stats.weak_band:,} bound tightenings")
        saved = 100.0 * (baseline_calls - tiered.strong_calls) / baseline_calls
        print(f"saved:       {saved:.1f}% of the routing bill, "
              "same kNN graph bit for bit")


if __name__ == "__main__":
    main()
