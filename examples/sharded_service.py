"""Scale-out serving: 4 engine shards, one shared distance store.

This demo partitions a dataset across 4 engine processes with a
landmark-based, capacity-balanced plan (`plan_shards`), pools every
resolved edge in a shared-memory CSR store, and shows the scale-out
guarantees in action:

1. **Scatter-gather exactness** — the 4-shard answer to every query is
   identical to a single-process engine's answer.
2. **Cross-query reuse still works sharded** — a repeated query charges
   zero new oracle calls, because each shard keeps its warm graph.
3. **Per-shard observability** — the merged registry labels every engine
   metric with ``shard="k"``, and ``stats()`` reports per-shard and
   aggregate counters.

It finishes by putting the sharded engine behind the asyncio front-end on
an ephemeral TCP port — the same deployment `repro serve --shards 4
--transport tcp` gives you.

Run with:  python examples/sharded_service.py
"""

from repro.datasets import sf_poi_space
from repro.service import (
    AsyncProximityServer,
    ProximityEngine,
    ShardedEngine,
    send_request,
)
from repro.service.jobs import JobSpec
from repro.spaces.handles import handle_for

N = 96
SHARDS = 4


def main() -> None:
    # A handle is a picklable recipe for the space — each shard process
    # rebuilds (and memoises) the dataset from it.
    handle = handle_for(sf_poi_space, n=N, seed=5, road=False)
    workload = [
        JobSpec(kind="knn", params={"query": q, "k": 5}) for q in (3, 17, 40, 88)
    ] + [JobSpec(kind="range", params={"query": 9, "radius": 0.12})]

    with ShardedEngine(handle, num_shards=SHARDS, provider="tri") as engine:
        sizes = [len(region) for region in engine.plan.regions]
        print(f"{SHARDS} shards over n={N}; region sizes {sizes} "
              f"(capacity-balanced), plan digest {engine.plan.digest}")

        answers = [engine.run(spec) for spec in workload]
        for spec, result in zip(workload, answers):
            print(f"{spec.kind:>6} {spec.params.get('query'):>3}: "
                  f"{result.status.value}, charged {result.charged_calls} calls")

        # 1. Exactness: a single-process engine must agree on every answer.
        with ProximityEngine.for_space(
            handle.space(), provider="tri", job_workers=1
        ) as reference:
            for spec, result in zip(workload, answers):
                assert reference.run(spec).value == result.value
        print("all answers identical to a single-process engine")

        # 2. Reuse: replaying a query is free on a warm sharded engine too.
        again = engine.run(workload[0])
        assert again.charged_calls == 0
        print(f"repeat {workload[0].kind}: charged {again.charged_calls} calls")

        # 3. Observability: aggregate + per-shard labelled series.
        aggregate = engine.stats()["aggregate"]
        print(f"aggregate: {aggregate['oracle_calls']:,} oracle calls, "
              f"{aggregate['graph_edges']:,} pooled edges in the shared store")
        labelled = [
            line for line in engine.render_metrics().splitlines()
            if 'shard="2"' in line and line.startswith("repro_oracle_calls_total")
        ]
        print(f"scrape sample: {labelled[0]}")

        # --- the same engine behind the asyncio TCP front-end --------------
        with AsyncProximityServer(engine, host="127.0.0.1", port=0) as server:
            target = f"127.0.0.1:{server.port}"
            stats = send_request(target, {"op": "stats"})["stats"]
            print(f"served stats over tcp at {target}: "
                  f"sharded={stats['sharded']}, shards={len(stats['shards'])}")

    print("4 processes, one shared store, zero answer drift")


if __name__ == "__main__":
    main()
