"""Computer-vision scenario: kNN graph over image feature vectors.

Content-based retrieval systems compare images with expensive descriptors;
this example stands in Flickr-style 256-dimensional feature vectors and
builds the exact 5-NN graph with and without the framework, then shows how
the savings respond to k — the paper's Figure 9a effect.

Run with:  python examples/image_knn_graph.py
"""

from repro.datasets import flickr_space
from repro.harness import print_series, run_experiment


def main() -> None:
    space = flickr_space(n=150, dim=256, seed=3)
    print(f"{space.n} feature vectors, {256} dimensions (Euclidean)\n")

    # --- headline: exact 5-NN graph -----------------------------------------
    vanilla = run_experiment(space, "knng-brute", "none", algorithm_kwargs={"k": 5})
    tri = run_experiment(space, "knng", "tri", algorithm_kwargs={"k": 5})
    for u in range(space.n):
        assert tri.result.neighbor_ids(u) == vanilla.result.neighbor_ids(u)
    save = 100 * (vanilla.total_calls - tri.total_calls) / vanilla.total_calls
    print(f"brute-force 5-NN graph : {vanilla.total_calls:,} distance computations")
    print(f"Tri-Scheme 5-NN graph  : {tri.total_calls:,} ({save:.1f}% saved, same graph)")

    # --- sweep k: more neighbours -> more candidates need resolving --------
    ks = [2, 5, 10, 15]
    calls, overhead = [], []
    for k in ks:
        record = run_experiment(space, "knng", "tri", algorithm_kwargs={"k": k})
        calls.append(record.total_calls)
        overhead.append(round(record.cpu_seconds, 3))
    print_series(
        "k",
        ks,
        {"oracle calls": calls, "CPU overhead (s)": overhead},
        title="Effect of k on calls and local CPU work (Fig. 9a/9d effect)",
    )


if __name__ == "__main__":
    main()
