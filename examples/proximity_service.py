"""A persistent proximity service: many queries, one shared distance graph.

This example stands up a :class:`~repro.service.ProximityEngine`, serves a
mixed batch of concurrent jobs (kNN, range, MST), and shows the three
service-layer guarantees in action:

1. **Cross-query reuse** — a repeated query is answered from the shared
   graph and charges zero new oracle calls.
2. **Budgets degrade gracefully** — a job with a too-small oracle budget
   comes back ``partial`` with the unresolved pairs listed, instead of
   crashing the engine.
3. **Warm restarts** — a snapshot taken at shutdown restores into a new
   engine that replays the workload without paying a single call.

It finishes by putting the warm engine behind the asyncio front-end and
round-tripping the JSON-lines protocol over either transport:

Run with:  python examples/proximity_service.py                  # Unix socket
           python examples/proximity_service.py --transport tcp  # TCP
           python examples/proximity_service.py --transport tcp --port 9200
"""

import argparse
import tempfile
from pathlib import Path

from repro.datasets import sf_poi_space
from repro.service import (
    AsyncProximityServer,
    JobStatus,
    ProximityEngine,
    send_request,
)


def serve_and_query(engine, transport: str, port: int) -> None:
    """Stand the engine behind the asyncio front-end and talk to it."""
    if transport == "tcp":
        server = AsyncProximityServer(engine, host="127.0.0.1", port=port)
    else:
        sock = Path(tempfile.gettempdir()) / "repro_example.sock"
        server = AsyncProximityServer(engine, socket_path=str(sock))
    with server:
        target = (
            f"127.0.0.1:{server.port}" if transport == "tcp" else str(server.socket_path)
        )
        print(f"serving over {transport} at {target}")
        pong = send_request(target, {"op": "ping"})
        answer = send_request(
            target,
            {"op": "submit", "spec": {"kind": "knn", "params": {"query": 3, "k": 5}}},
        )
        print(f"ping → {pong['ok']}; served knn over {transport}: "
              f"{answer['result']['status']}, "
              f"charged {answer['result']['charged_calls']} calls")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--transport", choices=("unix", "tcp"), default="unix")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; ignored for unix)")
    args = parser.parse_args()

    space = sf_poi_space(n=120, seed=5, road=False)
    snapshot = Path(tempfile.gettempdir()) / "repro_engine_warm.npz"

    # --- one engine, many concurrent jobs ---------------------------------
    with ProximityEngine.for_space(space, provider="tri", job_workers=2) as engine:
        handles = [
            engine.submit_job("knn", query=3, k=5, label="knn-3"),
            engine.submit_job("range", query=40, radius=0.12),
            engine.submit_job("mst", priority=5),  # jumps the queue
        ]
        for handle in handles:
            result = handle.result(timeout=120)
            print(f"{handle.spec.kind:>5}: {result.status.value:>9}  "
                  f"charged {result.charged_calls:,} calls")

        # 1. Reuse: the same kNN again is free — every pair is on the graph.
        repeat = engine.submit_job("knn", query=3, k=5).result(120)
        print(f"repeat knn: charged {repeat.charged_calls} calls "
              f"({repeat.warm_resolutions} warm resolutions)")
        assert repeat.charged_calls == 0

        # 2. Budgets: ask for a big job with 10 calls of budget.
        capped = engine.submit_job("knng", k=4, oracle_budget=10).result(120)
        print(f"budgeted knng: {capped.status.value}, "
              f"{len(capped.unresolved or ())} pairs left unresolved")
        assert capped.status is JobStatus.PARTIAL

        stats = engine.snapshot_stats()
        print(f"engine: {stats.oracle_calls:,} oracle calls total, "
              f"memo hit rate {stats.bound_memo_hit_rate:.0%}, "
              f"p95 job latency {stats.latency_p95_s * 1000:.1f} ms")
        engine.snapshot(str(snapshot))

    # --- 3. warm restart: restore and replay for free ----------------------
    with ProximityEngine.for_space(
        space, provider="tri", restore_from=str(snapshot)
    ) as warm:
        replay = warm.submit_job("knn", query=3, k=5).result(120)
        print(f"restored engine replayed knn for {warm.oracle.calls} new calls "
              f"({warm.snapshot_stats().restored_edges:,} edges restored)")
        assert warm.oracle.calls == 0
        assert replay.value == repeat.value

        # --- 4. the same engine behind a socket ----------------------------
        serve_and_query(warm, args.transport, args.port)

    print("same answers, zero re-paid distances — the warm state is an asset")


if __name__ == "__main__":
    main()
