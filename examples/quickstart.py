"""Quickstart: save distance-oracle calls in three steps.

1. Wrap your expensive distance function in a counting oracle.
2. Attach a bound provider (here: the paper's Tri Scheme) to a resolver.
3. Run any re-authored proximity algorithm — same output, fewer calls.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import EuclideanSpace, SmartResolver, TriScheme, prim_mst


def main() -> None:
    # 200 clustered points standing in for objects whose pairwise distances
    # are expensive to obtain (maps API, edit distance, image comparison...).
    rng = np.random.default_rng(0)
    centres = rng.uniform(0, 1, size=(6, 2))
    points = centres[rng.integers(6, size=200)] + rng.normal(scale=0.04, size=(200, 2))
    space = EuclideanSpace(points)

    # --- vanilla run: every comparison hits the oracle ---------------------
    vanilla_oracle = space.oracle()
    vanilla = prim_mst(SmartResolver(vanilla_oracle))

    # --- re-authored run: Tri Scheme decides comparisons from bounds -------
    oracle = space.oracle()
    resolver = SmartResolver(oracle)
    resolver.bounder = TriScheme(resolver.graph, space.diameter_bound())
    augmented = prim_mst(resolver)

    assert augmented.edge_set() == vanilla.edge_set(), "outputs must be identical"

    total_pairs = space.n * (space.n - 1) // 2
    saved = 100 * (vanilla_oracle.calls - oracle.calls) / vanilla_oracle.calls
    print(f"objects                  : {space.n}")
    print(f"possible pairs           : {total_pairs:,}")
    print(f"vanilla Prim oracle calls: {vanilla_oracle.calls:,}")
    print(f"Tri-Scheme oracle calls  : {oracle.calls:,}  ({saved:.1f}% saved)")
    print(f"MST weight (identical)   : {augmented.total_weight:.4f}")
    print(f"comparisons pruned       : {resolver.stats.decided_by_bounds:,}")


if __name__ == "__main__":
    main()
