"""Approximate mode: trade a declared stretch budget for fewer oracle calls.

Exactness is the framework's default, but some workloads (candidate
generation, visualisation, warm-up passes) tolerate answers within a known
multiplicative factor of the truth.  ``stretch=1.5`` tells the resolver it
may answer any distance with an estimate ``est`` satisfying
``true <= est <= 1.5 * true`` — *provided a bound interval certifies it*:
the resolver only accepts when ``upper / lower <= stretch``, so the budget
is a hard guarantee, not a heuristic.

The certifying intervals come from a ``SketchBoundProvider`` — O(n·L)
landmark distance sketches dense enough to close the gap on most pairs.
Every accepted answer's realised stretch lands in the
``repro_answer_stretch`` histogram, so the guarantee is auditable live.

Run with:  python examples/stretch_budget.py
"""

from repro.datasets import sf_poi_space
from repro.harness import run_experiment
from repro.obs import MetricsRegistry

N = 300
LANDMARKS = 150
STRETCH = 1.5


def main() -> None:
    space = sf_poi_space(n=N, road=False)

    # --- exact baseline ---------------------------------------------------
    exact = run_experiment(
        space, "knng", provider="sketch", num_landmarks=LANDMARKS,
        algorithm_kwargs={"k": 6},
    )
    print(f"exact:        {exact.algorithm_calls:,} oracle calls")

    # --- same build under a 1.5x stretch budget ---------------------------
    registry = MetricsRegistry()
    approx = run_experiment(
        space, "knng", provider="sketch", num_landmarks=LANDMARKS,
        algorithm_kwargs={"k": 6}, stretch=STRETCH, registry=registry,
    )
    saved = 100.0 * (exact.algorithm_calls - approx.algorithm_calls)
    saved /= exact.algorithm_calls
    print(f"stretch={STRETCH}:  {approx.algorithm_calls:,} oracle calls "
          f"({saved:.1f}% saved)")

    # The histogram proves the budget held: every observed ratio is in the
    # le="1.5" bucket, i.e. no answer exceeded 1.5x its certified lower
    # bound.
    snap = registry.snapshot()
    within = snap[f'repro_answer_stretch_bucket{{le="{STRETCH}"}}']
    total = snap["repro_answer_stretch_count"]
    print(f"audit:        {int(total):,} approximate answers, "
          f"{int(within):,} within budget "
          f"({'OK' if within == total else 'VIOLATION'})")


if __name__ == "__main__":
    main()
