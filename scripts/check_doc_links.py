#!/usr/bin/env python
"""Dead-link check for the repo's markdown documentation.

Scans ``[text](target)`` links in README.md, EXPERIMENTS.md, and docs/*.md
and fails when a *relative* target does not exist on disk.  External
(``http``/``https``/``mailto``) links and pure in-page anchors are skipped —
the check needs no network and stays deterministic in CI.

Usage: ``python scripts/check_doc_links.py [file-or-dir ...]``
(defaults to the standard doc set when called with no arguments).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — deliberately simple; nested brackets in link text
#: are not used anywhere in this repo's docs.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")

DEFAULT_TARGETS = ("README.md", "EXPERIMENTS.md", "ROADMAP.md", "docs")


def iter_markdown_files(targets):
    """Yield every markdown file named by ``targets`` (dirs recurse)."""
    for target in targets:
        path = REPO_ROOT / target
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        elif path.exists():
            yield path


def check_file(path: Path):
    """Return a list of ``(line_number, target)`` dead links in ``path``."""
    dead = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            bare = target.split("#", 1)[0]
            if not bare:
                continue
            resolved = (path.parent / bare).resolve()
            if not resolved.exists():
                dead.append((lineno, target))
    return dead


def main(argv):
    targets = argv or list(DEFAULT_TARGETS)
    failures = 0
    checked = 0
    for path in iter_markdown_files(targets):
        checked += 1
        for lineno, target in check_file(path):
            rel = path.relative_to(REPO_ROOT)
            print(f"{rel}:{lineno}: dead link -> {target}", file=sys.stderr)
            failures += 1
    if checked == 0:
        print("check_doc_links: no markdown files found", file=sys.stderr)
        return 1
    if failures:
        print(f"check_doc_links: {failures} dead link(s)", file=sys.stderr)
        return 1
    print(f"check_doc_links: {checked} file(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
