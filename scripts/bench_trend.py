#!/usr/bin/env python
"""Gate benchmark artifacts against committed baselines.

Compares a fresh ``BENCH_*.json`` artifact (the envelope written by
``scripts/bench_to_json.py``) with the baseline committed under
``benchmarks/baselines/`` and exits non-zero when any metric regressed by
more than the tolerance::

    python scripts/bench_trend.py BENCH_kernels.json \
        --baseline benchmarks/baselines/BENCH_kernels.json

Direction awareness
-------------------
Only metrics with a known "better" direction are gated; descriptive
numbers (sizes, counts, configuration echoes) are reported but never fail:

* ``*_seconds`` / ``*_ms`` — lower is better;
* ``*speedup*`` / ``*savings*`` / ``*throughput*`` / ``*recall*`` — higher
  is better.

The default tolerance is 25% relative change in the bad direction.  A new
metric absent from the baseline, or vice versa, is reported as informative
but does not fail the gate (trajectories start empty and grow).
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_TOLERANCE = 0.25

#: (suffix-or-substring, match kind, direction).  First match wins.
_DIRECTION_RULES = (
    ("_seconds", "suffix", "lower"),
    ("_ms", "suffix", "lower"),
    ("speedup", "substr", "higher"),
    ("savings", "substr", "higher"),
    ("throughput", "substr", "higher"),
    ("recall", "substr", "higher"),
)


def metric_direction(name: str) -> str | None:
    """``"lower"``/``"higher"`` = which direction is better, None = ungated."""
    lowered = name.lower()
    for token, kind, direction in _DIRECTION_RULES:
        if kind == "suffix" and lowered.endswith(token):
            return direction
        if kind == "substr" and token in lowered:
            return direction
    return None


def compare(current: dict, baseline: dict, tolerance: float) -> list[dict]:
    """Per-metric comparison rows; ``regressed`` marks gate failures."""
    cur = current.get("metrics", {})
    base = baseline.get("metrics", {})
    rows: list[dict] = []
    for name in sorted(set(cur) | set(base)):
        row = {
            "metric": name,
            "baseline": base.get(name),
            "current": cur.get(name),
            "direction": metric_direction(name),
            "change_pct": None,
            "regressed": False,
        }
        c, b = cur.get(name), base.get(name)
        gateable = (
            row["direction"] is not None
            and isinstance(c, (int, float))
            and not isinstance(c, bool)
            and isinstance(b, (int, float))
            and not isinstance(b, bool)
        )
        if gateable and b != 0:
            change = (c - b) / abs(b)
            row["change_pct"] = 100.0 * change
            bad = change > tolerance if row["direction"] == "lower" else change < -tolerance
            row["regressed"] = bad
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    """Human-readable comparison table."""
    header = ["metric", "baseline", "current", "change", "verdict"]
    table = [header]
    for row in rows:
        change = (
            f"{row['change_pct']:+.1f}%" if row["change_pct"] is not None else "-"
        )
        if row["regressed"]:
            verdict = "REGRESSED"
        elif row["direction"] is None:
            verdict = "info"
        else:
            verdict = "ok"
        table.append(
            [
                row["metric"],
                "-" if row["baseline"] is None else str(row["baseline"]),
                "-" if row["current"] is None else str(row["current"]),
                change,
                verdict,
            ]
        )
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    lines = []
    for idx, r in enumerate(table):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)))
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_*.json artifact")
    parser.add_argument("--baseline", required=True, help="committed baseline artifact")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max relative regression before failing (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    with open(args.current, encoding="utf-8") as fh:
        current = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    rows = compare(current, baseline, args.tolerance)
    print(render(rows))
    regressions = [r for r in rows if r["regressed"]]
    if regressions:
        names = ", ".join(r["metric"] for r in regressions)
        print(
            f"\nFAIL: {len(regressions)} metric(s) regressed beyond "
            f"{args.tolerance:.0%}: {names}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: no metric regressed beyond {args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
