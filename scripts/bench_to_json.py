#!/usr/bin/env python
"""Normalise a benchmark's raw measurement dump into a ``BENCH_*.json`` artifact.

Benchmarks that measure wall-clock themselves (e.g.
``benchmarks/test_shard_scaling.py`` with ``SHARD_SCALING_JSON`` set) write a
flat JSON object of raw numbers.  CI runs this script to wrap those numbers
in a stable artifact envelope::

    python scripts/bench_to_json.py /tmp/shard_scaling.raw.json \
        --name shard_scaling --out BENCH_shard_scaling.json

The envelope carries a schema version and the producing commit (when git is
available), so downstream tooling can diff artifacts across runs without
guessing at their provenance.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys

SCHEMA_VERSION = 1


def _git_commit() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def build_artifact(raw: dict, name: str) -> dict:
    """Wrap raw benchmark numbers in the artifact envelope."""
    if not isinstance(raw, dict) or not raw:
        raise ValueError("raw benchmark dump must be a non-empty JSON object")
    non_numeric = [
        key
        for key, value in raw.items()
        if not isinstance(value, (int, float, bool, str))
    ]
    if non_numeric:
        raise ValueError(
            f"raw dump values must be scalars; offending keys: {non_numeric}"
        )
    artifact = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": name,
        "metrics": dict(raw),
    }
    commit = _git_commit()
    if commit:
        artifact["commit"] = commit
    return artifact


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("raw", help="path to the raw measurement JSON dump")
    parser.add_argument("--name", required=True, help="benchmark name")
    parser.add_argument("--out", required=True, help="artifact path to write")
    args = parser.parse_args(argv)

    with open(args.raw, encoding="utf-8") as fh:
        raw = json.load(fh)
    artifact = build_artifact(raw, args.name)
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out} ({len(artifact['metrics'])} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
